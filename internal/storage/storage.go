// Package storage models the secondary storage S the paper's workers
// spill to when a window does not fit in the memory budget b (§2: "S is
// independent of workers' contexts, is globally accessible (e.g., S3),
// and offers two methods: store(τ_w) and get(τ_w)").
//
// Three implementations are provided: an in-memory store (tests), a
// file-backed store (durability), and a latency wrapper that injects the
// per-operation delay of a remote object store so experiments feel the
// cost of spilling the way the paper's deployment does.
package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"spear/internal/tuple"
)

// ErrNotFound is returned by Get for an unknown segment key.
var ErrNotFound = errors.New("storage: segment not found")

// SpillStore is the secondary storage interface. Keys identify spilled
// window segments; each worker namespaces its own keys. Implementations
// must be safe for concurrent use by multiple workers.
type SpillStore interface {
	// Store persists a batch of tuples under key, appending to any
	// batch already stored there (a worker spills a window in chunks
	// as its buffer overflows). Implementations must not retain ts
	// after returning: callers recycle the chunk buffer.
	Store(key string, ts []tuple.Tuple) error
	// Get retrieves every tuple stored under key, in store order.
	Get(key string) ([]tuple.Tuple, error)
	// Delete drops a segment. Deleting a missing key is a no-op: the
	// evict path runs for every window whether or not it spilled.
	Delete(key string) error
	// List returns every stored key with the given prefix, sorted.
	// Checkpoint recovery uses it to reconcile segments written after
	// the restored snapshot.
	List(prefix string) ([]string, error)
	// Truncate keeps only the first chunks Store-calls' worth of data
	// under key, discarding later appends. Truncating a missing key, or
	// to a count at or beyond what is stored, is a no-op. Recovery uses
	// it to rewind a segment to its checkpointed length.
	Truncate(key string, chunks int) error
	// Stats reports cumulative operation counts and bytes moved.
	Stats() Stats
}

// Stats counts traffic to the store.
type Stats struct {
	Stores, Gets, Deletes int64
	BytesStored           int64
	BytesFetched          int64
	TuplesStored          int64
	TuplesFetched         int64
}

// MemStore is an in-memory SpillStore. It keeps the encoded form so its
// cost model (encode on store, decode on get) matches the file store.
type MemStore struct {
	mu    sync.Mutex
	segs  map[string][][]byte
	stats Stats
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{segs: make(map[string][][]byte)}
}

// Store implements SpillStore.
func (m *MemStore) Store(key string, ts []tuple.Tuple) error {
	enc := tuple.EncodeBatch(ts)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.segs[key] = append(m.segs[key], enc)
	m.stats.Stores++
	m.stats.BytesStored += int64(len(enc))
	m.stats.TuplesStored += int64(len(ts))
	return nil
}

// Get implements SpillStore.
func (m *MemStore) Get(key string) ([]tuple.Tuple, error) {
	m.mu.Lock()
	chunks, ok := m.segs[key]
	m.stats.Gets++
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	var out []tuple.Tuple
	var bytes int64
	for _, c := range chunks {
		ts, err := tuple.DecodeBatch(c)
		if err != nil {
			return nil, err
		}
		out = append(out, ts...)
		bytes += int64(len(c))
	}
	m.mu.Lock()
	m.stats.BytesFetched += bytes
	m.stats.TuplesFetched += int64(len(out))
	m.mu.Unlock()
	return out, nil
}

// Delete implements SpillStore.
func (m *MemStore) Delete(key string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.segs, key)
	m.stats.Deletes++
	return nil
}

// List implements SpillStore.
func (m *MemStore) List(prefix string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var keys []string
	for k := range m.segs {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// Truncate implements SpillStore.
func (m *MemStore) Truncate(key string, chunks int) error {
	if chunks < 0 {
		return fmt.Errorf("storage: negative chunk count %d", chunks)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	segs, ok := m.segs[key]
	if !ok || chunks >= len(segs) {
		return nil
	}
	if chunks == 0 {
		delete(m.segs, key)
		return nil
	}
	m.segs[key] = segs[:chunks:chunks]
	return nil
}

// Stats implements SpillStore.
func (m *MemStore) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Keys returns the stored segment keys, sorted; used by tests.
func (m *MemStore) Keys() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	keys := make([]string, 0, len(m.segs))
	for k := range m.segs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// FileStore is a SpillStore writing one file per segment under a
// directory, mirroring how a worker would use local disk or a mounted
// object store.
type FileStore struct {
	dir   string
	mu    sync.Mutex
	stats Stats
}

// NewFileStore returns a store rooted at dir, creating it if needed.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create dir: %w", err)
	}
	return &FileStore{dir: dir}, nil
}

// encodeKey maps a segment key to a filesystem-safe file name
// reversibly: bytes in [A-Za-z0-9._-] pass through, everything else is
// percent-encoded as %XX. List depends on the encoding being lossless
// to recover the original keys from directory entries.
func encodeKey(key string) string {
	const hex = "0123456789ABCDEF"
	safe := make([]byte, 0, len(key)+8)
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.' || c == '_' || c == '-':
			safe = append(safe, c)
		default:
			safe = append(safe, '%', hex[c>>4], hex[c&0x0f])
		}
	}
	return string(safe)
}

// decodeKey reverses encodeKey. Malformed escapes report an error so a
// stray file in the store directory cannot masquerade as a segment.
func decodeKey(name string) (string, error) {
	unhex := func(c byte) (byte, bool) {
		switch {
		case c >= '0' && c <= '9':
			return c - '0', true
		case c >= 'A' && c <= 'F':
			return c - 'A' + 10, true
		}
		return 0, false
	}
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c != '%' {
			out = append(out, c)
			continue
		}
		if i+2 >= len(name) {
			return "", fmt.Errorf("storage: truncated escape in %q", name)
		}
		hi, ok1 := unhex(name[i+1])
		lo, ok2 := unhex(name[i+2])
		if !ok1 || !ok2 {
			return "", fmt.Errorf("storage: bad escape in %q", name)
		}
		out = append(out, hi<<4|lo)
		i += 2
	}
	return string(out), nil
}

const segSuffix = ".seg"

func (f *FileStore) path(key string) string {
	return filepath.Join(f.dir, encodeKey(key)+segSuffix)
}

// writeAtomic writes data to path via a temp file in the same
// directory, fsyncs it, and renames it into place, so a crash mid-write
// leaves either the old contents or the new — never a torn segment.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".spill-*.tmp")
	if err != nil {
		return fmt.Errorf("storage: create temp: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return fmt.Errorf("storage: write temp: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("storage: fsync temp: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("storage: close temp: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("storage: rename temp: %w", err)
	}
	// Sync the directory so the rename itself survives a power loss.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// Store implements SpillStore. Chunks are appended with a length-framed
// batch encoding. The append is crash-safe: the existing segment (if
// any) plus the new chunk are written to a temp file, fsynced, and
// renamed over the segment, so Get never observes a torn write.
func (f *FileStore) Store(key string, ts []tuple.Tuple) error {
	enc := tuple.EncodeBatch(ts)

	f.mu.Lock()
	defer f.mu.Unlock()
	path := f.path(key)
	prev, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("storage: read segment: %w", err)
	}
	framed := make([]byte, 0, len(prev)+len(enc)+8)
	framed = append(framed, prev...)
	framed = appendUint64(framed, uint64(len(enc)))
	framed = append(framed, enc...)
	if err := writeAtomic(path, framed); err != nil {
		return err
	}
	f.stats.Stores++
	f.stats.BytesStored += int64(len(enc))
	f.stats.TuplesStored += int64(len(ts))
	return nil
}

// Get implements SpillStore.
func (f *FileStore) Get(key string) ([]tuple.Tuple, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	data, err := os.ReadFile(f.path(key))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
		}
		return nil, fmt.Errorf("storage: read segment: %w", err)
	}
	var out []tuple.Tuple
	pos := 0
	for pos < len(data) {
		if pos+8 > len(data) {
			return nil, tuple.ErrCorrupt
		}
		n := int(readUint64(data[pos:]))
		pos += 8
		if pos+n > len(data) {
			return nil, tuple.ErrCorrupt
		}
		ts, err := tuple.DecodeBatch(data[pos : pos+n])
		if err != nil {
			return nil, err
		}
		out = append(out, ts...)
		pos += n
	}
	f.stats.Gets++
	f.stats.BytesFetched += int64(len(data))
	f.stats.TuplesFetched += int64(len(out))
	return out, nil
}

// Delete implements SpillStore.
func (f *FileStore) Delete(key string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	err := os.Remove(f.path(key))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("storage: delete segment: %w", err)
	}
	f.stats.Deletes++
	return nil
}

// List implements SpillStore.
func (f *FileStore) List(prefix string) ([]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	ents, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, fmt.Errorf("storage: list dir: %w", err)
	}
	var keys []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		key, err := decodeKey(strings.TrimSuffix(name, segSuffix))
		if err != nil {
			// Not one of ours (e.g. a leftover temp or foreign file):
			// skip rather than fail the whole listing.
			continue
		}
		if strings.HasPrefix(key, prefix) {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// Truncate implements SpillStore. The surviving frames are rewritten
// atomically, so a crash mid-truncate leaves the old segment intact.
func (f *FileStore) Truncate(key string, chunks int) error {
	if chunks < 0 {
		return fmt.Errorf("storage: negative chunk count %d", chunks)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	path := f.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("storage: read segment: %w", err)
	}
	// Walk the length-framed chunks to find where chunk #chunks ends.
	pos, n := 0, 0
	for pos < len(data) && n < chunks {
		if pos+8 > len(data) {
			return fmt.Errorf("storage: truncate %q: %w", key, tuple.ErrCorrupt)
		}
		sz := int(readUint64(data[pos:]))
		if sz < 0 || pos+8+sz > len(data) {
			return fmt.Errorf("storage: truncate %q: %w", key, tuple.ErrCorrupt)
		}
		pos += 8 + sz
		n++
	}
	if n < chunks || pos >= len(data) {
		return nil // already at or below the requested length
	}
	if pos == 0 {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("storage: truncate remove: %w", err)
		}
		return nil
	}
	return writeAtomic(path, data[:pos])
}

// Stats implements SpillStore.
func (f *FileStore) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

func appendUint64(b []byte, v uint64) []byte {
	return append(b,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func readUint64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// LatencyStore wraps a SpillStore and injects a fixed per-operation
// latency plus a per-byte transfer cost, modeling a remote object store.
// Clock is injectable so unit tests do not sleep.
type LatencyStore struct {
	inner SpillStore
	perOp time.Duration
	perKB time.Duration
	sleep func(time.Duration)
	// totalDelay accumulates injected nanoseconds. Atomic rather than
	// mutex-guarded: the async spill plane drives this store from a
	// worker pool, and the accumulator must not serialize sleeps.
	totalDelay atomic.Int64
}

// NewLatencyStore wraps inner with perOp latency per call and perKB per
// kilobyte moved. A nil sleep uses time.Sleep.
func NewLatencyStore(inner SpillStore, perOp, perKB time.Duration, sleep func(time.Duration)) *LatencyStore {
	if sleep == nil {
		sleep = time.Sleep
	}
	return &LatencyStore{inner: inner, perOp: perOp, perKB: perKB, sleep: sleep}
}

func (l *LatencyStore) delay(bytes int64) {
	d := l.perOp + time.Duration(bytes/1024)*l.perKB
	l.totalDelay.Add(int64(d))
	if d > 0 {
		l.sleep(d)
	}
}

// TotalDelay reports the cumulative injected latency. Safe for
// concurrent use; under concurrent Store/Get the per-call byte
// attribution (a Stats diff) is approximate, but the total only ever
// counts bytes the inner store actually moved.
func (l *LatencyStore) TotalDelay() time.Duration {
	return time.Duration(l.totalDelay.Load())
}

// Store implements SpillStore.
func (l *LatencyStore) Store(key string, ts []tuple.Tuple) error {
	before := l.inner.Stats().BytesStored
	err := l.inner.Store(key, ts)
	l.delay(l.inner.Stats().BytesStored - before)
	return err
}

// Get implements SpillStore.
func (l *LatencyStore) Get(key string) ([]tuple.Tuple, error) {
	before := l.inner.Stats().BytesFetched
	ts, err := l.inner.Get(key)
	l.delay(l.inner.Stats().BytesFetched - before)
	return ts, err
}

// Delete implements SpillStore.
func (l *LatencyStore) Delete(key string) error {
	l.delay(0)
	return l.inner.Delete(key)
}

// List implements SpillStore.
func (l *LatencyStore) List(prefix string) ([]string, error) {
	l.delay(0)
	return l.inner.List(prefix)
}

// Truncate implements SpillStore.
func (l *LatencyStore) Truncate(key string, chunks int) error {
	l.delay(0)
	return l.inner.Truncate(key, chunks)
}

// Stats implements SpillStore.
func (l *LatencyStore) Stats() Stats { return l.inner.Stats() }
