package storage

import (
	"errors"
	"sync"
	"testing"
	"time"

	"spear/internal/tuple"
)

func mkTuples(n int, base int64) []tuple.Tuple {
	out := make([]tuple.Tuple, n)
	for i := range out {
		out[i] = tuple.New(base+int64(i), tuple.String_("k"), tuple.Float(float64(i)))
	}
	return out
}

func testStore(t *testing.T, s SpillStore) {
	t.Helper()

	// Missing key.
	if _, err := s.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(missing) = %v, want ErrNotFound", err)
	}

	// Store + Get round trip.
	in := mkTuples(10, 100)
	if err := s.Store("w1", in); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("w1")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("got %d tuples", len(got))
	}
	for i := range in {
		if got[i].Ts != in[i].Ts || !got[i].Vals[1].Equal(in[i].Vals[1]) {
			t.Fatalf("tuple %d mismatch: %v vs %v", i, got[i], in[i])
		}
	}

	// Append semantics: a second Store on the same key extends it.
	if err := s.Store("w1", mkTuples(5, 200)); err != nil {
		t.Fatal(err)
	}
	got, err = s.Get("w1")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 15 {
		t.Fatalf("after append got %d tuples, want 15", len(got))
	}
	if got[10].Ts != 200 {
		t.Fatalf("appended chunk out of order: ts=%d", got[10].Ts)
	}

	// Delete, including of a missing key.
	if err := s.Delete("w1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("w1"); !errors.Is(err, ErrNotFound) {
		t.Fatal("segment survived Delete")
	}
	if err := s.Delete("never-existed"); err != nil {
		t.Fatalf("Delete(missing) = %v, want nil", err)
	}

	// Stats moved.
	st := s.Stats()
	if st.Stores != 2 || st.Gets < 2 || st.Deletes != 2 {
		t.Errorf("Stats = %+v", st)
	}
	if st.BytesStored <= 0 || st.TuplesStored != 15 {
		t.Errorf("byte accounting: %+v", st)
	}
}

func TestMemStore(t *testing.T) { testStore(t, NewMemStore()) }

func TestFileStore(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	testStore(t, fs)
}

func TestMemStoreKeys(t *testing.T) {
	m := NewMemStore()
	m.Store("b", mkTuples(1, 0))
	m.Store("a", mkTuples(1, 0))
	keys := m.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Errorf("Keys = %v", keys)
	}
}

func TestFileStoreSanitizesKeys(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := "worker/1\\win:5"
	if err := fs.Store(key, mkTuples(3, 0)); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Get(key)
	if err != nil || len(got) != 3 {
		t.Fatalf("Get = %d tuples, err %v", len(got), err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewMemStore()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := string(rune('a' + w))
			for i := 0; i < 50; i++ {
				if err := s.Store(key, mkTuples(4, int64(i))); err != nil {
					t.Error(err)
					return
				}
			}
			got, err := s.Get(key)
			if err != nil || len(got) != 200 {
				t.Errorf("worker %d: %d tuples, err %v", w, len(got), err)
			}
		}(w)
	}
	wg.Wait()
	if st := s.Stats(); st.TuplesStored != 8*200 {
		t.Errorf("TuplesStored = %d", st.TuplesStored)
	}
}

func TestLatencyStoreInjectsDelay(t *testing.T) {
	var slept time.Duration
	fake := func(d time.Duration) { slept += d }
	ls := NewLatencyStore(NewMemStore(), 10*time.Millisecond, time.Millisecond, fake)

	// ~8KB of tuples: 10ms per op + ~Nms transfer.
	big := mkTuples(300, 0)
	if err := ls.Store("k", big); err != nil {
		t.Fatal(err)
	}
	if slept < 10*time.Millisecond {
		t.Errorf("slept %v, want ≥ perOp", slept)
	}
	storeSlept := slept
	if _, err := ls.Get("k"); err != nil {
		t.Fatal(err)
	}
	if slept <= storeSlept {
		t.Error("Get should add delay")
	}
	if ls.TotalDelay() != slept {
		t.Errorf("TotalDelay %v != slept %v", ls.TotalDelay(), slept)
	}
	if err := ls.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if ls.Stats().Deletes != 1 {
		t.Error("stats should pass through")
	}
}

func TestLatencyStorePropagatesErrors(t *testing.T) {
	ls := NewLatencyStore(NewMemStore(), 0, 0, func(time.Duration) {})
	if _, err := ls.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
}

func BenchmarkMemStoreRoundtrip(b *testing.B) {
	s := NewMemStore()
	ts := mkTuples(1000, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Store("k", ts)
		if _, err := s.Get("k"); err != nil {
			b.Fatal(err)
		}
		s.Delete("k")
	}
}
