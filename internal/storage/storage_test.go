package storage

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"spear/internal/tuple"
)

func mkTuples(n int, base int64) []tuple.Tuple {
	out := make([]tuple.Tuple, n)
	for i := range out {
		out[i] = tuple.New(base+int64(i), tuple.String_("k"), tuple.Float(float64(i)))
	}
	return out
}

func testStore(t *testing.T, s SpillStore) {
	t.Helper()

	// Missing key.
	if _, err := s.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(missing) = %v, want ErrNotFound", err)
	}

	// Store + Get round trip.
	in := mkTuples(10, 100)
	if err := s.Store("w1", in); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("w1")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("got %d tuples", len(got))
	}
	for i := range in {
		if got[i].Ts != in[i].Ts || !got[i].Vals[1].Equal(in[i].Vals[1]) {
			t.Fatalf("tuple %d mismatch: %v vs %v", i, got[i], in[i])
		}
	}

	// Append semantics: a second Store on the same key extends it.
	if err := s.Store("w1", mkTuples(5, 200)); err != nil {
		t.Fatal(err)
	}
	got, err = s.Get("w1")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 15 {
		t.Fatalf("after append got %d tuples, want 15", len(got))
	}
	if got[10].Ts != 200 {
		t.Fatalf("appended chunk out of order: ts=%d", got[10].Ts)
	}

	// Delete, including of a missing key.
	if err := s.Delete("w1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("w1"); !errors.Is(err, ErrNotFound) {
		t.Fatal("segment survived Delete")
	}
	if err := s.Delete("never-existed"); err != nil {
		t.Fatalf("Delete(missing) = %v, want nil", err)
	}

	// Stats moved.
	st := s.Stats()
	if st.Stores != 2 || st.Gets < 2 || st.Deletes != 2 {
		t.Errorf("Stats = %+v", st)
	}
	if st.BytesStored <= 0 || st.TuplesStored != 15 {
		t.Errorf("byte accounting: %+v", st)
	}
}

func TestMemStore(t *testing.T) { testStore(t, NewMemStore()) }

func TestFileStore(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	testStore(t, fs)
}

func TestMemStoreKeys(t *testing.T) {
	m := NewMemStore()
	m.Store("b", mkTuples(1, 0))
	m.Store("a", mkTuples(1, 0))
	keys := m.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Errorf("Keys = %v", keys)
	}
}

func TestFileStoreSanitizesKeys(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := "worker/1\\win:5"
	if err := fs.Store(key, mkTuples(3, 0)); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Get(key)
	if err != nil || len(got) != 3 {
		t.Fatalf("Get = %d tuples, err %v", len(got), err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewMemStore()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := string(rune('a' + w))
			for i := 0; i < 50; i++ {
				if err := s.Store(key, mkTuples(4, int64(i))); err != nil {
					t.Error(err)
					return
				}
			}
			got, err := s.Get(key)
			if err != nil || len(got) != 200 {
				t.Errorf("worker %d: %d tuples, err %v", w, len(got), err)
			}
		}(w)
	}
	wg.Wait()
	if st := s.Stats(); st.TuplesStored != 8*200 {
		t.Errorf("TuplesStored = %d", st.TuplesStored)
	}
}

func TestLatencyStoreInjectsDelay(t *testing.T) {
	var slept time.Duration
	fake := func(d time.Duration) { slept += d }
	ls := NewLatencyStore(NewMemStore(), 10*time.Millisecond, time.Millisecond, fake)

	// ~8KB of tuples: 10ms per op + ~Nms transfer.
	big := mkTuples(300, 0)
	if err := ls.Store("k", big); err != nil {
		t.Fatal(err)
	}
	if slept < 10*time.Millisecond {
		t.Errorf("slept %v, want ≥ perOp", slept)
	}
	storeSlept := slept
	if _, err := ls.Get("k"); err != nil {
		t.Fatal(err)
	}
	if slept <= storeSlept {
		t.Error("Get should add delay")
	}
	if ls.TotalDelay() != slept {
		t.Errorf("TotalDelay %v != slept %v", ls.TotalDelay(), slept)
	}
	if err := ls.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if ls.Stats().Deletes != 1 {
		t.Error("stats should pass through")
	}
}

func TestLatencyStorePropagatesErrors(t *testing.T) {
	ls := NewLatencyStore(NewMemStore(), 0, 0, func(time.Duration) {})
	if _, err := ls.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
}

func BenchmarkMemStoreRoundtrip(b *testing.B) {
	s := NewMemStore()
	ts := mkTuples(1000, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Store("k", ts)
		if _, err := s.Get("k"); err != nil {
			b.Fatal(err)
		}
		s.Delete("k")
	}
}

func testListTruncate(t *testing.T, s SpillStore) {
	t.Helper()
	for _, k := range []string{"op/a", "op/b", "other/c"} {
		if err := s.Store(k, mkTuples(2, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Store("op/a", mkTuples(3, 50)); err != nil {
		t.Fatal(err)
	}

	keys, err := s.List("op/")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != "op/a" || keys[1] != "op/b" {
		t.Fatalf("List(op/) = %v", keys)
	}
	all, err := s.List("")
	if err != nil || len(all) != 3 {
		t.Fatalf("List(\"\") = %v, %v", all, err)
	}

	// Truncate back to the first chunk drops the appended tuples.
	if err := s.Truncate("op/a", 1); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("op/a")
	if err != nil || len(got) != 2 {
		t.Fatalf("after Truncate(1): %d tuples, err %v", len(got), err)
	}
	// Truncating at or beyond the stored length is a no-op.
	if err := s.Truncate("op/a", 5); err != nil {
		t.Fatal(err)
	}
	if got, _ = s.Get("op/a"); len(got) != 2 {
		t.Fatalf("Truncate beyond length changed data: %d tuples", len(got))
	}
	// Truncating a missing key is a no-op.
	if err := s.Truncate("never", 3); err != nil {
		t.Fatalf("Truncate(missing) = %v", err)
	}
	// Truncate to zero removes the segment entirely.
	if err := s.Truncate("op/b", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("op/b"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Truncate(0) left segment visible: %v", err)
	}
	keys, err = s.List("op/")
	if err != nil || len(keys) != 1 || keys[0] != "op/a" {
		t.Fatalf("List after Truncate(0) = %v, %v", keys, err)
	}
	// Negative counts are rejected.
	if err := s.Truncate("op/a", -1); err == nil {
		t.Fatal("Truncate(-1) accepted")
	}
}

func TestMemStoreListTruncate(t *testing.T) { testListTruncate(t, NewMemStore()) }

func TestFileStoreListTruncate(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	testListTruncate(t, fs)
}

func TestLatencyStoreListTruncate(t *testing.T) {
	testListTruncate(t, NewLatencyStore(NewMemStore(), 0, 0, func(time.Duration) {}))
}

func TestKeyEncodingRoundTrip(t *testing.T) {
	keys := []string{
		"plain", "with/slash", "back\\slash", "nul\x00byte",
		"perc%ent", "sp ace", "unicode-é世", "q/spear/0#3", "",
	}
	for _, k := range keys {
		enc := encodeKey(k)
		for i := 0; i < len(enc); i++ {
			c := enc[i]
			ok := c == '.' || c == '_' || c == '-' || c == '%' ||
				(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
			if !ok {
				t.Fatalf("encodeKey(%q) produced unsafe byte %q in %q", k, c, enc)
			}
		}
		dec, err := decodeKey(enc)
		if err != nil || dec != k {
			t.Fatalf("round trip %q -> %q -> %q (err %v)", k, enc, dec, err)
		}
	}
	for _, bad := range []string{"%", "%1", "%zz", "%G0"} {
		if _, err := decodeKey(bad); err == nil {
			t.Fatalf("decodeKey(%q) accepted malformed escape", bad)
		}
	}
}

// TestFileStoreTornWriteInvisible is the crash-safety contract: because
// Store writes to a temp file and renames, a crash mid-write can leave
// a stray temp file but never a half-written segment. Simulate the
// crash by planting a torn temp file next to a valid segment and
// verify Get and List see only committed data.
func TestFileStoreTornWriteInvisible(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Store("seg", mkTuples(4, 10)); err != nil {
		t.Fatal(err)
	}

	// A crashed append: partial frame bytes in an uncommitted temp file.
	torn := []byte{0xff, 0xee, 0xdd} // garbage, shorter than a frame header
	if err := os.WriteFile(filepath.Join(dir, ".spill-12345.tmp"), torn, 0o644); err != nil {
		t.Fatal(err)
	}

	got, err := fs.Get("seg")
	if err != nil || len(got) != 4 {
		t.Fatalf("Get after torn temp = %d tuples, err %v", len(got), err)
	}
	keys, err := fs.List("")
	if err != nil || len(keys) != 1 || keys[0] != "seg" {
		t.Fatalf("List after torn temp = %v, %v", keys, err)
	}

	// Even if a crashed run somehow left garbage at the *end* of a
	// committed file (e.g. a pre-atomic-store legacy segment), Get must
	// error rather than return partial data silently.
	path := filepath.Join(dir, encodeKey("seg")+segSuffix)
	fh, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fh.Write([]byte{0x09, 0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	fh.Close()
	if _, err := fs.Get("seg"); !errors.Is(err, tuple.ErrCorrupt) {
		t.Fatalf("Get(torn tail) = %v, want ErrCorrupt", err)
	}
	// Truncate to the intact prefix repairs the segment.
	if err := fs.Truncate("seg", 1); err != nil {
		t.Fatal(err)
	}
	if got, err := fs.Get("seg"); err != nil || len(got) != 4 {
		t.Fatalf("Get after repair = %d tuples, err %v", len(got), err)
	}
}

// TestMemStoreGetDoesNotAlias is a regression test for slice aliasing:
// a caller mutating the slice returned by Get (the async spill plane's
// cache hands fetched segments to window code that sorts and truncates
// them) must never corrupt what a later Get observes. MemStore decodes
// a fresh batch per Get; this pins that contract.
func TestMemStoreGetDoesNotAlias(t *testing.T) {
	s := NewMemStore()
	if err := s.Store("k", mkTuples(8, 100)); err != nil {
		t.Fatal(err)
	}
	first, err := s.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		first[i].Ts = -1
		first[i].Vals = nil
	}
	second, err := s.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range second {
		if got.Ts != 100+int64(i) || len(got.Vals) != 2 {
			t.Fatalf("tuple %d corrupted by earlier caller mutation: %v", i, got)
		}
	}
}

// TestLatencyStoreConcurrent drives LatencyStore from parallel
// goroutines the way the async spill plane's worker pool does. Run
// under -race it checks delay/TotalDelay synchronization; the assertion
// checks the accumulated delay covers at least every per-op charge.
func TestLatencyStoreConcurrent(t *testing.T) {
	const (
		workers = 8
		ops     = 40
		perOp   = time.Microsecond
	)
	ls := NewLatencyStore(NewMemStore(), perOp, 0, func(time.Duration) {})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := string(rune('a' + w))
			for i := 0; i < ops; i++ {
				if err := ls.Store(key, mkTuples(4, int64(i))); err != nil {
					t.Error(err)
					return
				}
				if _, err := ls.Get(key); err != nil {
					t.Error(err)
					return
				}
				_ = ls.TotalDelay() // concurrent reader
			}
		}(w)
	}
	wg.Wait()
	if got, want := ls.TotalDelay(), time.Duration(workers*ops*2)*perOp; got < want {
		t.Errorf("TotalDelay = %v, want ≥ %v (one per-op charge per call)", got, want)
	}
}
