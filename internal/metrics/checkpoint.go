package metrics

// CheckpointMetrics bundles the fault-tolerance telemetry: how long
// snapshots take, how much state they write, how long barrier alignment
// stalls workers, and how long recovery took. One instance serves a
// whole run (all workers observe into the same histograms, which are
// already goroutine-safe).
type CheckpointMetrics struct {
	// SnapshotTime records each per-operator snapshot duration in
	// nanoseconds (serialize + persist).
	SnapshotTime Histogram
	// AlignStall records each barrier-alignment round's stall in
	// nanoseconds at the windowed workers — the time between the first
	// and last barrier of a round, during which post-barrier input is
	// buffered instead of processed.
	AlignStall Histogram
	// SnapshotBytes counts total snapshot bytes persisted (blobs and
	// manifests).
	SnapshotBytes Counter
	// Completed counts committed checkpoints; Failed counts rounds
	// aborted by an error.
	Completed Counter
	Failed    Counter
	// RecoveryTime is the nanoseconds spent restoring operator state
	// and rewinding secondary storage at startup.
	RecoveryTime Gauge
	// LastBytes is the size of the most recently committed checkpoint
	// (all blobs plus the manifest).
	LastBytes Gauge
}
