// Package metrics is the engine's runtime telemetry, mirroring the role
// of Storm's metrics API in the paper's evaluation ("we use Storm's
// metrics API, which provides periodic reporting of runtime telemetry
// for each worker thread"). It provides atomic counters, gauges with
// peak tracking, and histograms that report the mean and 95-percentile
// window processing times the figures plot.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an instantaneous value with a recorded high-water mark. It
// is lock-free: Set is one atomic store plus a CAS loop that only spins
// while the peak is actually advancing, so per-tuple gauge refreshes in
// the core managers never serialize on a mutex.
type Gauge struct {
	v    atomic.Int64
	peak atomic.Int64
}

// Set records the current value and updates the peak.
func (g *Gauge) Set(v int64) {
	g.v.Store(v)
	for {
		p := g.peak.Load()
		if v <= p || g.peak.CompareAndSwap(p, v) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Peak returns the high-water mark.
func (g *Gauge) Peak() int64 { return g.peak.Load() }

// HistogramCap bounds a Histogram's retained samples. Count, Sum, Mean,
// Min, and Max stay exact forever; order statistics (Percentile) are
// exact up to HistogramCap observations and computed from a uniform
// reservoir sample beyond it. The cap keeps memory O(1) on unbounded
// streams — exactly the regime the live observability plane makes
// routine — while leaving short experiment runs (a few thousand windows)
// bit-identical to the previous keep-everything implementation.
const HistogramCap = 4096

// Histogram records float64 observations and reports order statistics.
// Memory is bounded at HistogramCap samples via reservoir sampling
// (Vitter's Algorithm R with a deterministic SplitMix64 stream);
// aggregate statistics (Count, Sum, Mean, Min, Max) are exact over every
// observation regardless of the cap.
type Histogram struct {
	mu       sync.Mutex
	samples  []float64
	count    int64
	sum      float64
	min, max float64
	rng      uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if h.count == 1 || v > h.max {
		h.max = v
	}
	if len(h.samples) < HistogramCap {
		h.samples = append(h.samples, v)
	} else if j := h.rand64() % uint64(h.count); j < HistogramCap {
		h.samples[j] = v
	}
	h.mu.Unlock()
}

// rand64 steps the histogram's private SplitMix64 stream (caller holds
// the mutex). A fixed generator keeps reservoir contents deterministic
// for a given observation sequence.
func (h *Histogram) rand64() uint64 {
	h.rng += 0x9e3779b97f4a7c15
	z := h.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(float64(d)) }

// Count returns the number of observations (exact, beyond the cap too).
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return int(h.count)
}

// Sum returns the exact sum of all observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the exact arithmetic mean, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Percentile returns the p-th percentile (p in [0,1]) by linear
// interpolation over the retained samples, or 0 with no observations.
// Up to HistogramCap observations this is exact; beyond it, it is an
// estimate from a uniform reservoir (p=0 and p=1 remain exact: they
// return the tracked min/max).
func (h *Histogram) Percentile(p float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 1 {
		return h.max
	}
	sorted := make([]float64, len(h.samples))
	copy(sorted, h.samples)
	sort.Float64s(sorted)
	return percentileOf(sorted, p)
}

// percentileOf interpolates the p-th percentile of an already-sorted,
// non-empty slice.
func percentileOf(sorted []float64, p float64) float64 {
	n := len(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	rank := p * float64(n-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Max returns the exact largest observation, or 0 with none.
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Min returns the exact smallest observation, or 0 with none.
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Samples returns a copy of the retained observations in arrival order
// (all of them below HistogramCap; a uniform reservoir beyond).
func (h *Histogram) Samples() []float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]float64, len(h.samples))
	copy(out, h.samples)
	return out
}

// Reset discards all observations.
func (h *Histogram) Reset() {
	h.mu.Lock()
	h.samples = h.samples[:0]
	h.count = 0
	h.sum = 0
	h.min = 0
	h.max = 0
	h.mu.Unlock()
}

// Worker is the per-worker-thread telemetry bundle the experiments read.
type Worker struct {
	Name string

	// ProcTime records the per-window processing time in nanoseconds:
	// the time from staging a complete window to emitting its result
	// (the metric of Figs. 6, 8, 10, 12).
	ProcTime Histogram

	// MemBytes tracks the worker's buffered bytes used to produce
	// results (Fig. 7); Peak gives the high-water mark.
	MemBytes Gauge

	// BudgetTuples is the sample budget currently in force — the
	// adaptive controller's trajectory, one point per worker.
	BudgetTuples Gauge

	TuplesIn            Counter // tuples received
	WindowsTotal        Counter // windows fired
	WindowsAccelerated  Counter // windows answered from the sample
	WindowsExact        Counter // windows processed in full
	WindowsSpilled      Counter // windows that touched secondary storage
	WindowsShed         Counter // windows answered sample-only because shedding dropped their archive
	LateDropped         Counter // tuples behind the last fired window
	EstimationFailures  Counter // accuracy checks that rejected acceleration
	TuplesProcessedFull Counter // tuples scanned by exact processing
	TuplesShed          Counter // tuples whose archive write was shed under overload
}

// AcceleratedFraction returns the fraction of windows answered from the
// sample (the §5.4 metric: "SPEAr expedites only 68% of the total
// windows").
func (w *Worker) AcceleratedFraction() float64 {
	total := w.WindowsTotal.Load()
	if total == 0 {
		return 0
	}
	return float64(w.WindowsAccelerated.Load()) / float64(total)
}

// Registry collects per-worker telemetry for one engine run.
type Registry struct {
	mu      sync.Mutex
	workers []*Worker
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Worker returns a new named worker bundle registered with r.
func (r *Registry) Worker(name string) *Worker {
	w := &Worker{Name: name}
	r.mu.Lock()
	r.workers = append(r.workers, w)
	r.mu.Unlock()
	return w
}

// Workers returns all registered workers in registration order.
func (r *Registry) Workers() []*Worker {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Worker, len(r.workers))
	copy(out, r.workers)
	return out
}

// Summary aggregates registry-wide statistics.
type Summary struct {
	Workers            int
	Windows            int64
	Accelerated        int64
	MeanProcTime       time.Duration // mean of per-window times across workers
	P95ProcTime        time.Duration
	MeanMemBytes       float64 // mean of per-worker peak memory
	TuplesIn           int64
	LateDropped        int64
	EstimationFailures int64
}

// Summarize merges all workers' telemetry: processing times are pooled
// across workers (the paper reports "the average processing time among
// all workers"), memory is the mean per-worker peak. The mean uses the
// histograms' exact sums and counts, so it is unaffected by sample
// bounding; the 95th percentile pools the retained samples (exact while
// every worker stays under HistogramCap observations).
func (r *Registry) Summarize() Summary {
	var s Summary
	var pooled []float64
	var memSum, procSum float64
	var procCount int64
	for _, w := range r.Workers() {
		s.Workers++
		s.Windows += w.WindowsTotal.Load()
		s.Accelerated += w.WindowsAccelerated.Load()
		s.TuplesIn += w.TuplesIn.Load()
		s.LateDropped += w.LateDropped.Load()
		s.EstimationFailures += w.EstimationFailures.Load()
		pooled = append(pooled, w.ProcTime.Samples()...)
		procSum += w.ProcTime.Sum()
		procCount += int64(w.ProcTime.Count())
		memSum += float64(w.MemBytes.Peak())
	}
	if s.Workers > 0 {
		s.MeanMemBytes = memSum / float64(s.Workers)
	}
	if procCount > 0 {
		s.MeanProcTime = time.Duration(procSum / float64(procCount))
	}
	if len(pooled) > 0 {
		sort.Float64s(pooled)
		s.P95ProcTime = time.Duration(percentileOf(pooled, 0.95))
	}
	return s
}

// String renders the summary as one log line.
func (s Summary) String() string {
	return fmt.Sprintf(
		"workers=%d windows=%d accel=%d (%.1f%%) mean=%v p95=%v mem=%.0fB tuples=%d late=%d estfail=%d",
		s.Workers, s.Windows, s.Accelerated,
		100*safeFrac(s.Accelerated, s.Windows),
		s.MeanProcTime, s.P95ProcTime, s.MeanMemBytes, s.TuplesIn,
		s.LateDropped, s.EstimationFailures)
}

func safeFrac(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
