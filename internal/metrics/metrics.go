// Package metrics is the engine's runtime telemetry, mirroring the role
// of Storm's metrics API in the paper's evaluation ("we use Storm's
// metrics API, which provides periodic reporting of runtime telemetry
// for each worker thread"). It provides atomic counters, gauges with
// peak tracking, and histograms that report the mean and 95-percentile
// window processing times the figures plot.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an instantaneous value with a recorded high-water mark.
type Gauge struct {
	mu   sync.Mutex
	v    int64
	peak int64
}

// Set records the current value and updates the peak.
func (g *Gauge) Set(v int64) {
	g.mu.Lock()
	g.v = v
	if v > g.peak {
		g.peak = v
	}
	g.mu.Unlock()
}

// Load returns the current value.
func (g *Gauge) Load() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Peak returns the high-water mark.
func (g *Gauge) Peak() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.peak
}

// Histogram records float64 observations and reports order statistics.
// It keeps every observation: experiments record one value per window,
// a few thousand at most, and exactness matters more than bounded
// memory here.
type Histogram struct {
	mu      sync.Mutex
	samples []float64
	sum     float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.samples = append(h.samples, v)
	h.sum += v
	h.mu.Unlock()
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(float64(d)) }

// Count returns the number of observations.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Mean returns the arithmetic mean, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / float64(len(h.samples))
}

// Percentile returns the p-th percentile (p in [0,1]) by linear
// interpolation, or 0 with no observations.
func (h *Histogram) Percentile(p float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	sorted := make([]float64, n)
	copy(sorted, h.samples)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	rank := p * float64(n-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Max returns the largest observation, or 0 with none.
func (h *Histogram) Max() float64 { return h.Percentile(1) }

// Samples returns a copy of all observations in arrival order.
func (h *Histogram) Samples() []float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]float64, len(h.samples))
	copy(out, h.samples)
	return out
}

// Reset discards all observations.
func (h *Histogram) Reset() {
	h.mu.Lock()
	h.samples = h.samples[:0]
	h.sum = 0
	h.mu.Unlock()
}

// Worker is the per-worker-thread telemetry bundle the experiments read.
type Worker struct {
	Name string

	// ProcTime records the per-window processing time in nanoseconds:
	// the time from staging a complete window to emitting its result
	// (the metric of Figs. 6, 8, 10, 12).
	ProcTime Histogram

	// MemBytes tracks the worker's buffered bytes used to produce
	// results (Fig. 7); Peak gives the high-water mark.
	MemBytes Gauge

	TuplesIn            Counter // tuples received
	WindowsTotal        Counter // windows fired
	WindowsAccelerated  Counter // windows answered from the sample
	WindowsExact        Counter // windows processed in full
	WindowsSpilled      Counter // windows that touched secondary storage
	LateDropped         Counter // tuples behind the last fired window
	EstimationFailures  Counter // accuracy checks that rejected acceleration
	TuplesProcessedFull Counter // tuples scanned by exact processing
}

// AcceleratedFraction returns the fraction of windows answered from the
// sample (the §5.4 metric: "SPEAr expedites only 68% of the total
// windows").
func (w *Worker) AcceleratedFraction() float64 {
	total := w.WindowsTotal.Load()
	if total == 0 {
		return 0
	}
	return float64(w.WindowsAccelerated.Load()) / float64(total)
}

// Registry collects per-worker telemetry for one engine run.
type Registry struct {
	mu      sync.Mutex
	workers []*Worker
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Worker returns a new named worker bundle registered with r.
func (r *Registry) Worker(name string) *Worker {
	w := &Worker{Name: name}
	r.mu.Lock()
	r.workers = append(r.workers, w)
	r.mu.Unlock()
	return w
}

// Workers returns all registered workers in registration order.
func (r *Registry) Workers() []*Worker {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Worker, len(r.workers))
	copy(out, r.workers)
	return out
}

// Summary aggregates registry-wide statistics.
type Summary struct {
	Workers            int
	Windows            int64
	Accelerated        int64
	MeanProcTime       time.Duration // mean of per-window times across workers
	P95ProcTime        time.Duration
	MeanMemBytes       float64 // mean of per-worker peak memory
	TuplesIn           int64
	LateDropped        int64
	EstimationFailures int64
}

// Summarize merges all workers' telemetry: processing times are pooled
// across workers (the paper reports "the average processing time among
// all workers"), memory is the mean per-worker peak.
func (r *Registry) Summarize() Summary {
	var s Summary
	var pooled []float64
	var memSum float64
	for _, w := range r.Workers() {
		s.Workers++
		s.Windows += w.WindowsTotal.Load()
		s.Accelerated += w.WindowsAccelerated.Load()
		s.TuplesIn += w.TuplesIn.Load()
		s.LateDropped += w.LateDropped.Load()
		s.EstimationFailures += w.EstimationFailures.Load()
		pooled = append(pooled, w.ProcTime.Samples()...)
		memSum += float64(w.MemBytes.Peak())
	}
	if s.Workers > 0 {
		s.MeanMemBytes = memSum / float64(s.Workers)
	}
	if len(pooled) > 0 {
		var h Histogram
		for _, v := range pooled {
			h.Observe(v)
		}
		s.MeanProcTime = time.Duration(h.Mean())
		s.P95ProcTime = time.Duration(h.Percentile(0.95))
	}
	return s
}

// String renders the summary as one log line.
func (s Summary) String() string {
	return fmt.Sprintf(
		"workers=%d windows=%d accel=%d (%.1f%%) mean=%v p95=%v mem=%.0fB tuples=%d late=%d estfail=%d",
		s.Workers, s.Windows, s.Accelerated,
		100*safeFrac(s.Accelerated, s.Windows),
		s.MeanProcTime, s.P95ProcTime, s.MeanMemBytes, s.TuplesIn,
		s.LateDropped, s.EstimationFailures)
}

func safeFrac(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
