package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Errorf("Load = %d", c.Load())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Load() != 10000 {
		t.Errorf("Load = %d, want 10000", c.Load())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Set(50)
	g.Set(20)
	if g.Load() != 20 {
		t.Errorf("Load = %d", g.Load())
	}
	if g.Peak() != 50 {
		t.Errorf("Peak = %d", g.Peak())
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Percentile(0.5) != 0 || h.Count() != 0 {
		t.Error("empty histogram should report zeros")
	}
	for _, v := range []float64{10, 20, 30, 40, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Mean() != 30 {
		t.Errorf("Mean = %v", h.Mean())
	}
	if got := h.Percentile(0.5); got != 30 {
		t.Errorf("p50 = %v", got)
	}
	if got := h.Percentile(0); got != 10 {
		t.Errorf("p0 = %v", got)
	}
	if got := h.Percentile(1); got != 50 {
		t.Errorf("p100 = %v", got)
	}
	if got := h.Max(); got != 50 {
		t.Errorf("Max = %v", got)
	}
	// Interpolated p95 between 40 and 50.
	if got := h.Percentile(0.95); got <= 40 || got > 50 {
		t.Errorf("p95 = %v", got)
	}
	s := h.Samples()
	if len(s) != 5 || s[0] != 10 {
		t.Errorf("Samples = %v", s)
	}
	s[0] = 999
	if h.Percentile(0) == 999 {
		t.Error("Samples aliases internal storage")
	}
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 {
		t.Error("Reset failed")
	}
}

func TestGaugeConcurrentPeak(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j <= 1000; j++ {
				g.Set(int64(w*1000 + j))
			}
		}(w)
	}
	wg.Wait()
	if g.Peak() != 8000 {
		t.Errorf("Peak = %d, want 8000 (CAS max must never lose the high-water mark)", g.Peak())
	}
	if g.Load() < 0 || g.Load() > 8000 {
		t.Errorf("Load = %d outside observed range", g.Load())
	}
}

// TestHistogramBoundedMemory is the regression test for the unbounded-
// growth bug: 10M observations must retain O(HistogramCap) samples while
// the aggregate statistics stay exact.
func TestHistogramBoundedMemory(t *testing.T) {
	var h Histogram
	const n = 10_000_000
	for i := 0; i < n; i++ {
		h.Observe(float64(i % 1000))
	}
	if got := len(h.Samples()); got > HistogramCap {
		t.Fatalf("retained %d samples, want <= %d", got, HistogramCap)
	}
	if h.Count() != n {
		t.Errorf("Count = %d, want %d", h.Count(), n)
	}
	if got, want := h.Mean(), 499.5; got != want {
		t.Errorf("Mean = %v, want %v (must be exact beyond the cap)", got, want)
	}
	if h.Min() != 0 || h.Max() != 999 {
		t.Errorf("Min/Max = %v/%v, want 0/999 (exact beyond the cap)", h.Min(), h.Max())
	}
	// The reservoir is uniform over [0, 1000): the median estimate must
	// land near 500 (±10% is far looser than a 4096-sample bound).
	if p50 := h.Percentile(0.5); p50 < 400 || p50 > 600 {
		t.Errorf("p50 = %v, want ~500 from the reservoir", p50)
	}
}

// TestHistogramSmallRunExact pins that runs under the cap are unchanged
// by the bounding: every observation is retained and order statistics
// are computed over the full set, exactly as before.
func TestHistogramSmallRunExact(t *testing.T) {
	var h Histogram
	n := HistogramCap // boundary: still exact
	for i := 0; i < n; i++ {
		h.Observe(float64(i))
	}
	if got := len(h.Samples()); got != n {
		t.Fatalf("retained %d samples, want all %d under the cap", got, n)
	}
	if got, want := h.Percentile(0.5), float64(n-1)/2; got != want {
		t.Errorf("p50 = %v, want exact %v", got, want)
	}
	if got, want := h.Percentile(0.95), 0.95*float64(n-1); got != want {
		t.Errorf("p95 = %v, want exact %v", got, want)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	var h Histogram
	h.ObserveDuration(3 * time.Millisecond)
	if h.Mean() != 3e6 {
		t.Errorf("Mean = %v", h.Mean())
	}
}

func TestWorkerAcceleratedFraction(t *testing.T) {
	var w Worker
	if w.AcceleratedFraction() != 0 {
		t.Error("no windows should give 0")
	}
	w.WindowsTotal.Add(10)
	w.WindowsAccelerated.Add(7)
	if got := w.AcceleratedFraction(); got != 0.7 {
		t.Errorf("AcceleratedFraction = %v", got)
	}
}

func TestRegistrySummarize(t *testing.T) {
	r := NewRegistry()
	w1 := r.Worker("op-0")
	w2 := r.Worker("op-1")
	if len(r.Workers()) != 2 {
		t.Fatalf("Workers = %d", len(r.Workers()))
	}

	w1.WindowsTotal.Add(4)
	w1.WindowsAccelerated.Add(4)
	w1.TuplesIn.Add(100)
	w1.MemBytes.Set(1000)
	w2.WindowsTotal.Add(4)
	w2.TuplesIn.Add(100)
	w2.MemBytes.Set(3000)
	w2.LateDropped.Inc()
	w2.EstimationFailures.Add(2)
	for _, v := range []float64{1e6, 2e6} {
		w1.ProcTime.Observe(v)
		w2.ProcTime.Observe(v * 10)
	}

	s := r.Summarize()
	if s.Workers != 2 || s.Windows != 8 || s.Accelerated != 4 || s.TuplesIn != 200 {
		t.Errorf("Summary = %+v", s)
	}
	if s.MeanMemBytes != 2000 {
		t.Errorf("MeanMemBytes = %v", s.MeanMemBytes)
	}
	// Pooled mean of {1, 2, 10, 20} ms = 8.25ms.
	if s.MeanProcTime != time.Duration(8.25e6) {
		t.Errorf("MeanProcTime = %v", s.MeanProcTime)
	}
	if s.LateDropped != 1 || s.EstimationFailures != 2 {
		t.Errorf("Summary = %+v", s)
	}
	if !strings.Contains(s.String(), "windows=8") {
		t.Errorf("String = %q", s.String())
	}
}

func TestEmptySummary(t *testing.T) {
	s := NewRegistry().Summarize()
	if s.Workers != 0 || s.MeanProcTime != 0 || s.MeanMemBytes != 0 {
		t.Errorf("empty Summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("String should render")
	}
}
