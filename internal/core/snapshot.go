package core

import (
	"fmt"
	"sort"

	"spear/internal/agg"
	"spear/internal/sample"
	"spear/internal/tuple"
	"spear/internal/window"
)

// Checkpoint support for the window managers. Each manager serializes
// every field that influences future output — fire cursors, per-window
// reservoirs/moments, and the archive's pane table — into one versioned
// blob. Map iteration is sorted so identical state produces identical
// bytes (the checkpoint manifest checksums blobs).
//
// State held in secondary storage S (archive panes, spill segments) is
// not copied into the blob; instead the blob records how many chunks of
// each segment the snapshot covers, and RewindStore truncates/deletes
// whatever a crashed run wrote after the snapshot. Deletions are
// deferred while checkpointing is on (Config.DeferStoreDeletes) so a
// rewind never needs a segment that is already gone.

// Versioned type tags. The v2 scalar/grouped formats (lowercase tags)
// carry the adaptive-controller state: the live budget — zero is legal,
// meaning "reservoirs dropped, exact-only" — the shedding flag and shed
// counter, and per-window taint/reservoir-presence bits. Writers emit
// v2; readers accept both, keeping v1 blobs (whose invariants were
// stricter: budget always positive, reservoirs always present)
// restorable across the upgrade.
const (
	snapScalar      byte = 0x53 // 'S' (v1, read-only)
	snapGrouped     byte = 0x47 // 'G' (v1, read-only)
	snapExact       byte = 0x45 // 'E'
	snapIncremental byte = 0x49 // 'I'
	snapScalarV2    byte = 0x73 // 's'
	snapGroupedV2   byte = 0x67 // 'g'
)

func badTag(kind string, tag byte, rd *tuple.WireReader) error {
	if rd.Err() != nil {
		return rd.Err()
	}
	return fmt.Errorf("%w: %s snapshot tag 0x%02x", tuple.ErrCorrupt, kind, tag)
}

// ---- ScalarManager ----

// SnapshotState implements the checkpoint Snapshotter contract.
func (m *ScalarManager) SnapshotState() ([]byte, error) {
	dst := []byte{snapScalarV2}
	dst = tuple.AppendBool(dst, m.started)
	dst = tuple.AppendBool(dst, m.fired)
	dst = tuple.AppendI64(dst, int64(m.nextFire))
	dst = tuple.AppendI64(dst, m.seq)
	dst = tuple.AppendI64(dst, m.maxPos)
	dst = tuple.AppendI64(dst, m.late)
	dst = tuple.AppendUvar(dst, uint64(m.curBudget))
	dst = tuple.AppendBool(dst, m.shed)
	dst = tuple.AppendI64(dst, m.sheds)
	var err error
	if dst, err = m.arc.appendState(dst); err != nil {
		return nil, err
	}
	ids := sortedWinIDs(len(m.wins), func(yield func(window.ID)) {
		for id := range m.wins {
			yield(id)
		}
	})
	dst = tuple.AppendUvar(dst, uint64(len(ids)))
	for _, id := range ids {
		w := m.wins[id]
		dst = tuple.AppendI64(dst, int64(id))
		dst = tuple.AppendI64(dst, w.first)
		dst = tuple.AppendBool(dst, w.res != nil)
		if w.res != nil {
			dst = w.res.AppendTo(dst)
		}
		dst = w.all.AppendTo(dst)
		dst = tuple.AppendBool(dst, w.tainted)
		dst = tuple.AppendBool(dst, w.inc != nil)
		if w.inc != nil {
			dst = w.inc.AppendTo(dst)
		}
	}
	return dst, nil
}

// RestoreState implements the checkpoint Snapshotter contract.
func (m *ScalarManager) RestoreState(b []byte) error {
	rd := tuple.NewWireReader(b)
	tag := rd.Byte()
	v2 := tag == snapScalarV2
	if !v2 && tag != snapScalar {
		return badTag("scalar", tag, rd)
	}
	started := rd.Bool()
	fired := rd.Bool()
	nextFire := window.ID(rd.I64())
	seq := rd.I64()
	maxPos := rd.I64()
	late := rd.I64()
	curBudget := rd.Uvar()
	shed := false
	var sheds int64
	if v2 {
		shed = rd.Bool()
		sheds = rd.I64()
	}
	arc := newArchive(m.cfg.Store, m.cfg.Key, m.cfg.Spec, m.cfg.ArchiveChunk, m.cfg.DeferStoreDeletes)
	arc.readState(rd)
	n := rd.Count(2)
	if rd.Err() != nil {
		return rd.Err()
	}
	wins := make(map[window.ID]*scalarWin, n)
	for i := 0; i < n; i++ {
		id := window.ID(rd.I64())
		w := &scalarWin{first: rd.I64()}
		hasRes := true
		if v2 {
			// A budget collapsed to zero drops per-window reservoirs;
			// v2 records their presence per window. v1 blobs always
			// carry one.
			hasRes = rd.Bool()
		}
		if hasRes {
			w.res = sample.ReadReservoir(rd)
		}
		w.all.ReadFrom(rd)
		if v2 {
			w.tainted = rd.Bool()
		}
		hasInc := rd.Bool()
		if rd.Err() != nil {
			return rd.Err()
		}
		if hasInc != m.useIncremental() {
			return fmt.Errorf("%w: scalar snapshot incremental flag mismatches configuration", tuple.ErrCorrupt)
		}
		if hasInc {
			inc, err := agg.NewIncremental(m.cfg.Agg)
			if err != nil {
				return err
			}
			inc.ReadFrom(rd)
			w.inc = inc
		}
		if _, dup := wins[id]; dup {
			return fmt.Errorf("%w: duplicate scalar window %d", tuple.ErrCorrupt, id)
		}
		wins[id] = w
	}
	if err := rd.Done(); err != nil {
		return err
	}
	// v1 invariant: the budget was fixed at query submission, where
	// validation rejects non-positive values, so a zero can only be
	// corruption. Under v2 the adaptive controller may legitimately
	// drive the budget to zero (exact-only operation), so the check is
	// versioned — restoring at the budget floor must succeed.
	if seq < 0 || late < 0 || sheds < 0 || (!v2 && curBudget == 0) {
		return fmt.Errorf("%w: scalar snapshot counters", tuple.ErrCorrupt)
	}
	m.started, m.fired, m.nextFire, m.seq, m.maxPos, m.late = started, fired, nextFire, seq, maxPos, late
	m.curBudget = int(curBudget)
	m.shed = shed && m.curBudget > 0
	m.sheds = sheds
	m.arc = arc
	m.wins = wins
	// The memoized window belongs to the replaced map; both halves of
	// the memo reset together so the invariant (lastWin nil ⇒ lastID
	// meaningless) never depends on the nil check alone.
	m.lastID, m.lastWin = 0, nil
	m.pushRestoredControl()
	return nil
}

// pushRestoredControl re-publishes the restored budget and shedding
// state to the controller cell (the cells are the controller's source
// of truth, so recovery must rewrite them) and to the budget gauge.
func (m *ScalarManager) pushRestoredControl() {
	if c := m.cfg.Cell; c != nil {
		c.Set(m.curBudget, m.shed)
	}
	if m.cfg.Metrics != nil {
		m.cfg.Metrics.BudgetTuples.Set(int64(m.curBudget))
	}
}

// RewindStore reconciles archive panes with the restored state.
func (m *ScalarManager) RewindStore() error { return m.arc.rewind() }

// TakeDeferredDeletes returns and clears deferred pane deletions.
func (m *ScalarManager) TakeDeferredDeletes() []string { return m.arc.takeDeferred() }

// ---- GroupedManager ----

// SnapshotState implements the checkpoint Snapshotter contract.
func (m *GroupedManager) SnapshotState() ([]byte, error) {
	dst := []byte{snapGroupedV2}
	known := m.arc != nil
	dst = tuple.AppendBool(dst, known)
	dst = tuple.AppendBool(dst, m.started)
	dst = tuple.AppendBool(dst, m.fired)
	dst = tuple.AppendI64(dst, int64(m.nextFire))
	dst = tuple.AppendI64(dst, m.maxPos)
	dst = tuple.AppendI64(dst, m.late)
	dst = tuple.AppendI64(dst, m.seq)
	dst = tuple.AppendUvar(dst, uint64(m.curBudget))
	dst = tuple.AppendBool(dst, m.shed)
	dst = tuple.AppendI64(dst, m.sheds)
	var err error
	if known {
		if dst, err = m.arc.appendState(dst); err != nil {
			return nil, err
		}
	} else {
		blob, err := m.buf.SnapshotState()
		if err != nil {
			return nil, err
		}
		dst = tuple.AppendBlob(dst, blob)
	}
	ids := sortedWinIDs(len(m.wins), func(yield func(window.ID)) {
		for id := range m.wins {
			yield(id)
		}
	})
	dst = tuple.AppendUvar(dst, uint64(len(ids)))
	for _, id := range ids {
		w := m.wins[id]
		dst = tuple.AppendI64(dst, int64(id))
		dst = w.gs.AppendTo(dst)
		dst = tuple.AppendBool(dst, w.known != nil)
		if w.known != nil {
			dst = w.known.AppendTo(dst)
		}
		dst = tuple.AppendBool(dst, w.tainted)
	}
	return dst, nil
}

// RestoreState implements the checkpoint Snapshotter contract.
func (m *GroupedManager) RestoreState(b []byte) error {
	rd := tuple.NewWireReader(b)
	tag := rd.Byte()
	v2 := tag == snapGroupedV2
	if !v2 && tag != snapGrouped {
		return badTag("grouped", tag, rd)
	}
	known := rd.Bool()
	if rd.Err() == nil && known != (m.arc != nil) {
		return fmt.Errorf("%w: grouped snapshot mode mismatches configuration", tuple.ErrCorrupt)
	}
	started := rd.Bool()
	fired := rd.Bool()
	nextFire := window.ID(rd.I64())
	maxPos := rd.I64()
	late := rd.I64()
	seq := rd.I64()
	curBudget := uint64(m.cfg.BudgetTuples) // v1: the budget never moved
	shed := false
	var sheds int64
	if v2 {
		curBudget = rd.Uvar()
		shed = rd.Bool()
		sheds = rd.I64()
	}
	var arc *archive
	var bufBlob []byte
	if known {
		arc = newArchive(m.cfg.Store, m.cfg.Key, m.cfg.Spec, m.cfg.ArchiveChunk, m.cfg.DeferStoreDeletes)
		arc.readState(rd)
	} else {
		bufBlob = rd.Blob()
	}
	n := rd.Count(2)
	if rd.Err() != nil {
		return rd.Err()
	}
	wins := make(map[window.ID]*groupedWin, n)
	for i := 0; i < n; i++ {
		id := window.ID(rd.I64())
		w := &groupedWin{gs: sample.ReadGroupStats(rd)}
		hasKnown := rd.Bool()
		if rd.Err() != nil {
			return rd.Err()
		}
		// v1 invariant: known-path windows always carry reservoirs. v2
		// decouples the two — a window opened while the adaptive budget
		// was below KnownGroups has none (metadata-only, exact-only) —
		// but reservoirs on the buffered path remain impossible.
		if v2 {
			if hasKnown && !known {
				return fmt.Errorf("%w: grouped window %d reservoir flag mismatch", tuple.ErrCorrupt, id)
			}
		} else if hasKnown != known {
			return fmt.Errorf("%w: grouped window %d reservoir flag mismatch", tuple.ErrCorrupt, id)
		}
		if hasKnown {
			w.known = sample.ReadGroupReservoirs(rd)
			if rd.Err() != nil {
				return rd.Err()
			}
		}
		if v2 {
			w.tainted = rd.Bool()
		}
		if _, dup := wins[id]; dup {
			return fmt.Errorf("%w: duplicate grouped window %d", tuple.ErrCorrupt, id)
		}
		wins[id] = w
	}
	if err := rd.Done(); err != nil {
		return err
	}
	if seq < 0 || late < 0 || sheds < 0 {
		return fmt.Errorf("%w: grouped snapshot counters", tuple.ErrCorrupt)
	}
	if !known {
		if err := m.buf.RestoreState(bufBlob); err != nil {
			return err
		}
	} else {
		m.arc = arc
	}
	m.started, m.fired, m.nextFire, m.maxPos, m.late, m.seq = started, fired, nextFire, maxPos, late, seq
	m.curBudget = int(curBudget)
	m.sheds = sheds
	m.wins = wins
	m.shed = false
	m.SetShedding(shed)
	if c := m.cfg.Cell; c != nil {
		c.Set(m.curBudget, m.shed)
	}
	if m.cfg.Metrics != nil {
		m.cfg.Metrics.BudgetTuples.Set(int64(m.curBudget))
	}
	return nil
}

// RewindStore reconciles archive panes or spill segments with the
// restored state.
func (m *GroupedManager) RewindStore() error {
	if m.arc != nil {
		return m.arc.rewind()
	}
	return m.buf.RewindStore()
}

// TakeDeferredDeletes returns and clears deferred deletions.
func (m *GroupedManager) TakeDeferredDeletes() []string {
	if m.arc != nil {
		return m.arc.takeDeferred()
	}
	return m.buf.TakeDeferredDeletes()
}

// ---- ExactManager ----

// SnapshotState delegates to the underlying single-buffer manager.
func (m *ExactManager) SnapshotState() ([]byte, error) {
	blob, err := m.buf.SnapshotState()
	if err != nil {
		return nil, err
	}
	return append([]byte{snapExact}, blob...), nil
}

// RestoreState implements the checkpoint Snapshotter contract.
func (m *ExactManager) RestoreState(b []byte) error {
	rd := tuple.NewWireReader(b)
	if tag := rd.Byte(); tag != snapExact {
		return badTag("exact", tag, rd)
	}
	return m.buf.RestoreState(b[1:])
}

// RewindStore reconciles spill segments with the restored state.
func (m *ExactManager) RewindStore() error { return m.buf.RewindStore() }

// TakeDeferredDeletes returns and clears deferred segment deletions.
func (m *ExactManager) TakeDeferredDeletes() []string { return m.buf.TakeDeferredDeletes() }

// ---- IncrementalManager ----

// SnapshotState implements the checkpoint Snapshotter contract.
func (m *IncrementalManager) SnapshotState() ([]byte, error) {
	dst := []byte{snapIncremental}
	dst = tuple.AppendBool(dst, m.started)
	dst = tuple.AppendBool(dst, m.fired)
	dst = tuple.AppendI64(dst, int64(m.nextFire))
	dst = tuple.AppendI64(dst, m.seq)
	dst = tuple.AppendI64(dst, m.maxPos)
	dst = tuple.AppendI64(dst, m.late)
	ids := sortedWinIDs(len(m.wins), func(yield func(window.ID)) {
		for id := range m.wins {
			yield(id)
		}
	})
	dst = tuple.AppendUvar(dst, uint64(len(ids)))
	for _, id := range ids {
		dst = tuple.AppendI64(dst, int64(id))
		dst = m.wins[id].AppendTo(dst)
	}
	return dst, nil
}

// RestoreState implements the checkpoint Snapshotter contract.
func (m *IncrementalManager) RestoreState(b []byte) error {
	rd := tuple.NewWireReader(b)
	if tag := rd.Byte(); tag != snapIncremental {
		return badTag("incremental", tag, rd)
	}
	started := rd.Bool()
	fired := rd.Bool()
	nextFire := window.ID(rd.I64())
	seq := rd.I64()
	maxPos := rd.I64()
	late := rd.I64()
	n := rd.Count(8 + 48)
	if rd.Err() != nil {
		return rd.Err()
	}
	wins := make(map[window.ID]*agg.Incremental, n)
	for i := 0; i < n; i++ {
		id := window.ID(rd.I64())
		inc, err := agg.NewIncremental(m.cfg.Agg)
		if err != nil {
			return err
		}
		inc.ReadFrom(rd)
		if rd.Err() != nil {
			return rd.Err()
		}
		if _, dup := wins[id]; dup {
			return fmt.Errorf("%w: duplicate incremental window %d", tuple.ErrCorrupt, id)
		}
		wins[id] = inc
	}
	if err := rd.Done(); err != nil {
		return err
	}
	if seq < 0 || late < 0 {
		return fmt.Errorf("%w: incremental snapshot counters", tuple.ErrCorrupt)
	}
	m.started, m.fired, m.nextFire, m.seq, m.maxPos, m.late = started, fired, nextFire, seq, maxPos, late
	m.wins = wins
	return nil
}

// sortedWinIDs collects window IDs from iterate and sorts them.
func sortedWinIDs(n int, iterate func(yield func(window.ID))) []window.ID {
	ids := make([]window.ID, 0, n)
	iterate(func(id window.ID) { ids = append(ids, id) })
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
