package core

import (
	"testing"

	"spear/internal/agg"
	"spear/internal/tuple"
)

// TestScalarRestoreResetsWinsMemo is the regression test for a bug the
// snapshotcover analyzer found: RestoreState rebuilt the window map but
// left lastID/lastWin pointing at a window of the replaced map, so the
// first post-restore tuple whose window ID collided with the stale memo
// would fold into a dead window. Both halves of the memo must reset
// together on restore.
func TestScalarRestoreResetsWinsMemo(t *testing.T) {
	m, err := NewScalarManager(mkCfg(agg.Func{Op: agg.Mean}, 64))
	if err != nil {
		t.Fatal(err)
	}
	// Populate the memo: consecutive tuples in one window make the wins
	// lookup cache the window.
	for i := 0; i < 10; i++ {
		if _, err := m.OnTuple(tuple.New(int64(i), tuple.Float(1), tuple.String_("g"))); err != nil {
			t.Fatal(err)
		}
	}
	if m.lastWin == nil {
		t.Fatal("precondition failed: wins memo not populated by consecutive tuples")
	}
	b, err := m.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RestoreState(b); err != nil {
		t.Fatal(err)
	}
	if m.lastWin != nil || m.lastID != 0 {
		t.Errorf("RestoreState left a stale wins memo: lastID=%v lastWin=%p — it points into the pre-restore window map", m.lastID, m.lastWin)
	}
	// The restored manager must keep ingesting into the restored map.
	if _, err := m.OnTuple(tuple.New(10, tuple.Float(1), tuple.String_("g"))); err != nil {
		t.Fatalf("ingest after restore: %v", err)
	}
	if m.lastWin == nil {
		t.Error("wins memo not rebuilt from the restored window map")
	}
}
