// Package core implements SPEAr itself: the approximate window managers
// that realize the paper's processing model (Algorithms 1 and 2).
//
// At tuple arrival a manager accumulates, per active window and within
// the user's budget b, an incremental simple random sample and/or
// statistical metadata (count, variance; per-group frequency and
// variance for grouped operations). At watermark arrival it estimates
// the accuracy ε̂_w achievable from the budget contents; if ε̂_w ≤ ε it
// emits the approximate result R̂_w at O(b) cost, otherwise it processes
// the whole window exactly — fetching it from secondary storage S if it
// was never buffered — at the same cost as a conventional SPE.
package core

import (
	"errors"
	"fmt"
	"time"

	"spear/internal/agg"
	"spear/internal/control"
	"spear/internal/metrics"
	"spear/internal/storage"
	"spear/internal/tuple"
	"spear/internal/window"
)

// Config describes one approximate stateful operation — the engine-side
// form of the paper's Fig. 5 API (.budget(1MB).error(10%, 95%)).
type Config struct {
	// Spec is the window definition.
	Spec window.Spec
	// Agg is the stateful operation applied per window. Ignored when
	// Custom is set.
	Agg agg.Func
	// Custom is a user-defined holistic scalar aggregate — the
	// paper's custom approximate stateful operation API. It requires
	// a ScalarEstimator (there is no generic accuracy bound for an
	// arbitrary function) and is scalar-only: set KeyBy to nil.
	Custom *agg.CustomFunc
	// Value extracts the aggregated measure from a tuple.
	Value tuple.Extractor
	// KeyBy extracts the grouping key; nil makes the operation scalar.
	KeyBy tuple.KeyExtractor

	// Epsilon is the user's relative error bound ε: an accelerated
	// result may not deviate from the exact one by more than ε, for a
	// Confidence fraction of windows. For quantile aggregates ε is
	// interpreted as the rank error, following Manku et al.
	Epsilon float64
	// Confidence is the paper's α (e.g. 0.95).
	Confidence float64
	// BudgetTuples is the memory budget b expressed in tuples — the
	// reservoir capacity for scalar operations, the sample size for
	// grouped ones. BudgetBytes converts from a byte budget.
	BudgetTuples int

	// KnownGroups, when positive, declares the number of distinct
	// groups at CQ submission time; SPEAr then divides b equally and
	// samples at tuple arrival, eliminating the watermark-time scan
	// (§4.1: "when the number of groups is defined by the user at CQ
	// submission ... SPEAr produces R̂_w at a minimal cost").
	KnownGroups int

	// Store is the secondary storage S every tuple is archived to
	// (scalar operations) and exact fallbacks read from.
	Store storage.SpillStore
	// Key namespaces this worker's segments in Store.
	Key string

	// Seed makes sampling reproducible.
	Seed int64

	// DisableIncremental turns off the incremental fast path for
	// non-holistic scalar operations, forcing them through the
	// sample-and-estimate path. The paper does this in §5.5 to
	// isolate the estimation mechanism ("SPEAr is configured to
	// produce the mean result only at watermark arrival (i.e., no
	// incremental optimization)").
	DisableIncremental bool

	// ScalarEstimator overrides the built-in accuracy estimation for
	// scalar operations — the paper's custom-operation API ("a user
	// has to define an accuracy-estimation function"). Nil selects
	// the default for Agg's class.
	ScalarEstimator ScalarEstimator
	// GroupedEstimator likewise for grouped operations.
	GroupedEstimator GroupedEstimator

	// Metrics receives telemetry; nil records nothing.
	Metrics *metrics.Worker

	// Clock supplies wall-clock readings for processing-time telemetry
	// (ProcTime observations) only — event-time logic never consults
	// it. Nil selects the system clock. Tests inject a fake clock for
	// deterministic timing assertions.
	Clock func() time.Time

	// ArchiveChunk is the number of tuples batched per write to
	// Store; zero selects a default of 512.
	ArchiveChunk int

	// SpillAhead is the number of upcoming windows whose spilled panes
	// are prefetched from Store on each watermark (watermark-driven
	// read-ahead through the async spill plane). Zero disables
	// prefetching; it is only effective when Store is an async
	// spill.Plane.
	SpillAhead int

	// Budget, when non-nil, adapts the budget online between windows
	// (the paper's future-work extension); BudgetTuples is then the
	// starting value. Ignored while Cell is attached — the controller
	// and a per-window policy must not both steer the budget.
	Budget BudgetPolicy

	// Cell, when non-nil, is the adaptive accuracy controller's
	// mailbox (internal/control): the manager reads the published
	// budget and shedding flag at every ingest entry point — two
	// atomic loads — and applies changes at batch boundaries.
	// BudgetTuples is the starting value the cell was created with.
	Cell *control.Cell

	// Columnar opts the manager into the columnar ingest fast lane:
	// when enabled, the engine delivers micro-batches as typed column
	// batches and OnColumnBatch runs the tight-loop kernels over raw
	// []float64 / dictionary-coded key slices. Results are bit-identical
	// to the row path by contract; any batch whose columns are not
	// eligible (nulls, mixed kinds, extractor mismatch) falls back to
	// OnTupleBatch automatically.
	Columnar ColumnarSpec

	// DeferStoreDeletes, set by the checkpointing layer, makes the
	// manager record Store deletions (archive panes, spill segments)
	// instead of executing them, exposing them via TakeDeferredDeletes.
	// A crash after a checkpoint must be able to rewind to state that
	// still references those segments; the checkpoint coordinator
	// executes the deletions only after the next checkpoint commits.
	DeferStoreDeletes bool
}

// ColumnarSpec declares the field projections the columnar kernels may
// assume: Value must be equivalent to tuple.FieldFloat(ValueField) and
// — for grouped operations — KeyBy to tuple.FieldString(KeyField). The
// kernels verify the equivalence against the first row of every batch
// and fall back to the row path on mismatch, so a wrong declaration
// costs speed, never correctness.
type ColumnarSpec struct {
	Enabled    bool
	ValueField int
	KeyField   int
}

// errors returned by config validation.
var (
	errNoValue = errors.New("core: Value extractor is required")
	errNoStore = errors.New("core: secondary storage Store is required")
)

func (c *Config) validate() error {
	if err := c.Spec.Validate(); err != nil {
		return err
	}
	if c.Custom != nil {
		if err := c.Custom.Validate(); err != nil {
			return err
		}
		if c.ScalarEstimator == nil {
			return errors.New("core: custom operation requires a ScalarEstimator")
		}
		if c.KeyBy != nil {
			return errors.New("core: custom operations are scalar-only")
		}
	} else if err := c.Agg.Validate(); err != nil {
		return err
	}
	if c.Value == nil {
		return errNoValue
	}
	if !(c.Epsilon > 0 && c.Epsilon < 1) {
		return fmt.Errorf("core: epsilon %v outside (0, 1)", c.Epsilon)
	}
	if !(c.Confidence > 0 && c.Confidence < 1) {
		return fmt.Errorf("core: confidence %v outside (0, 1)", c.Confidence)
	}
	if c.BudgetTuples <= 0 {
		return fmt.Errorf("core: budget %d must be positive", c.BudgetTuples)
	}
	if c.Store == nil {
		return errNoStore
	}
	if c.KnownGroups < 0 {
		return fmt.Errorf("core: KnownGroups %d negative", c.KnownGroups)
	}
	if c.KnownGroups > 0 && c.KeyBy == nil {
		return errors.New("core: KnownGroups set on a scalar operation")
	}
	if c.ArchiveChunk == 0 {
		c.ArchiveChunk = 512
	}
	if c.ArchiveChunk < 0 {
		return fmt.Errorf("core: ArchiveChunk %d negative", c.ArchiveChunk)
	}
	if c.SpillAhead < 0 {
		return fmt.Errorf("core: SpillAhead %d negative", c.SpillAhead)
	}
	return nil
}

// clock returns the configured telemetry clock, defaulting to the
// system clock. This is the single sanctioned wall-clock reference in
// the event-time packages; every manager reads time through it, and the
// eventtime analyzer keeps it that way.
func (c *Config) clock() func() time.Time {
	if c.Clock != nil {
		return c.Clock
	}
	//lint:ignore eventtime telemetry-clock default; event-time logic never calls this
	return time.Now
}

// BudgetBytes converts a byte budget into a tuple budget given the
// per-value size f, reserving two slots for the window's variance and
// size, exactly as the paper accounts it ("the reservoir sample of each
// S_w carries up to ⌊10⁶·f⁻¹⌋ − 2 values").
func BudgetBytes(budget int, bytesPerValue int) int {
	if bytesPerValue <= 0 {
		bytesPerValue = 8
	}
	n := budget/bytesPerValue - 2
	if n < 1 {
		n = 1
	}
	return n
}
