package core

import (
	"math"
	"math/rand"
	"testing"

	"spear/internal/agg"
	"spear/internal/stats"
	"spear/internal/tuple"
)

func TestCustomFuncValidation(t *testing.T) {
	if err := (agg.CustomFunc{}).Validate(); err == nil {
		t.Error("empty custom func accepted")
	}
	if err := (agg.CustomFunc{Name: "x"}).Validate(); err == nil {
		t.Error("custom func without Compute accepted")
	}
	good := agg.TrimmedMean(0.1)
	if err := good.Validate(); err != nil {
		t.Errorf("TrimmedMean invalid: %v", err)
	}
	if good.String() == "" {
		t.Error("String empty")
	}
	defer func() {
		if recover() == nil {
			t.Error("bad trim fraction accepted")
		}
	}()
	agg.TrimmedMean(0.6)
}

func TestTrimmedMeanComputation(t *testing.T) {
	tm := agg.TrimmedMean(0.2)
	// 0.2-trim of {1..10}: drop below p20=2.8 and above p80=8.2 →
	// mean of 3..8 = 5.5.
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := tm.Compute(vals, 10); got != 5.5 {
		t.Errorf("trimmed mean = %v, want 5.5", got)
	}
	if got := tm.Compute(nil, 0); got != 0 {
		t.Errorf("empty = %v", got)
	}
}

func TestRangeComputation(t *testing.T) {
	r := agg.Range()
	if got := r.Compute([]float64{3, 9, 1, 5}, 4); got != 8 {
		t.Errorf("range = %v", got)
	}
	if got := r.Compute(nil, 0); got != 0 {
		t.Errorf("empty range = %v", got)
	}
}

func TestCustomOpConfigValidation(t *testing.T) {
	tm := agg.TrimmedMean(0.1)
	cfg := mkCfg(agg.Func{}, 100)
	cfg.Custom = &tm
	if err := cfg.validate(); err == nil {
		t.Error("custom op without estimator accepted")
	}
	cfg.ScalarEstimator = MeanLikeEstimator
	if err := cfg.validate(); err != nil {
		t.Errorf("valid custom op rejected: %v", err)
	}
	cfg.KeyBy = tuple.FieldString(0)
	if err := cfg.validate(); err == nil {
		t.Error("grouped custom op accepted")
	}
	cfg.KeyBy = nil
	bad := agg.CustomFunc{Name: "broken"}
	cfg.Custom = &bad
	if err := cfg.validate(); err == nil {
		t.Error("invalid custom func accepted")
	}
}

func TestCustomOpSampledAndExactPaths(t *testing.T) {
	tm := agg.TrimmedMean(0.1)
	mk := func(accept bool) *ScalarManager {
		cfg := mkCfg(agg.Func{}, 500)
		cfg.Custom = &tm
		cfg.ScalarEstimator = func(s ScalarState) (float64, bool) {
			if len(s.Sample) == 0 {
				return math.Inf(1), false
			}
			// Reuse the mean CI as a (reasonable) trimmed-mean proxy.
			if !accept {
				return math.Inf(1), false
			}
			est := s.Stats.Mean()
			iv := stats.MeanCI(est, s.Stats.StdDev(), int64(len(s.Sample)), s.N, s.Confidence)
			return stats.RelativeHalfWidth(est, iv), true
		}
		m, err := NewScalarManager(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	r := rand.New(rand.NewSource(9))
	var vals []float64
	for i := 0; i < 4000; i++ {
		vals = append(vals, 50+r.NormFloat64()*5)
	}
	exact := tm.Compute(vals, int64(len(vals)))

	// Accepting estimator → sampled path, estimate near exact.
	m := mk(true)
	for i, v := range vals {
		m.OnTuple(tuple.New(int64(i)%100, tuple.Float(v)))
	}
	rs, err := m.OnWatermark(100)
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Mode != ModeSampled {
		t.Fatalf("Mode = %v", rs[0].Mode)
	}
	if rel := stats.RelativeError(rs[0].Scalar, exact); rel > 0.10 {
		t.Errorf("sampled trimmed mean %v vs exact %v", rs[0].Scalar, exact)
	}

	// Refusing estimator → exact fallback, bit-exact via the archive.
	m = mk(false)
	for i, v := range vals {
		m.OnTuple(tuple.New(int64(i)%100, tuple.Float(v)))
	}
	rs, err = m.OnWatermark(100)
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Mode != ModeExact {
		t.Fatalf("fallback Mode = %v", rs[0].Mode)
	}
	if math.Abs(rs[0].Scalar-exact) > 1e-9 {
		t.Errorf("fallback %v vs exact %v", rs[0].Scalar, exact)
	}
}

func TestAIMDBudgetPolicy(t *testing.T) {
	p := &AIMDBudget{Min: 100, Max: 10000, Epsilon: 0.10}
	// Fallback grows.
	if got := p.Next(500, Result{Mode: ModeExact}); got != 1001 {
		t.Errorf("grow = %d, want 1001", got)
	}
	// Comfortable acceleration shrinks.
	if got := p.Next(1000, Result{Mode: ModeSampled, EstError: 0.01}); got != 950 {
		t.Errorf("shrink = %d, want 950", got)
	}
	// Borderline acceleration holds.
	if got := p.Next(1000, Result{Mode: ModeSampled, EstError: 0.09}); got != 1000 {
		t.Errorf("hold = %d", got)
	}
	// Incremental holds.
	if got := p.Next(1000, Result{Mode: ModeIncremental}); got != 1000 {
		t.Errorf("incremental hold = %d", got)
	}
	// Clamping.
	if got := p.Next(9999, Result{Mode: ModeExact}); got != 10000 {
		t.Errorf("max clamp = %d", got)
	}
	if got := p.Next(101, Result{Mode: ModeSampled, EstError: 0.001}); got != 100 {
		t.Errorf("min clamp = %d", got)
	}
	// Zero-value defaults survive.
	var dflt AIMDBudget
	if got := dflt.Next(10, Result{Mode: ModeExact}); got != 21 {
		t.Errorf("default grow = %d", got)
	}
	if got := dflt.Next(0, Result{Mode: ModeSampled}); got != 1 {
		t.Errorf("floor = %d", got)
	}
}

func TestAdaptiveBudgetConverges(t *testing.T) {
	// Start with a hopeless budget of 10 on high-variance data: the
	// policy must grow it until windows accelerate, without operator
	// help — the scenario the paper's offline analysis hard-coded.
	cfg := mkCfg(agg.Func{Op: agg.Mean}, 10)
	cfg.DisableIncremental = true
	cfg.Budget = &AIMDBudget{Min: 10, Max: 4000}
	m, err := NewScalarManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(12))
	modes := make([]Mode, 0, 40)
	for w := 0; w < 40; w++ {
		for i := 0; i < 2000; i++ {
			ts := int64(w*100) + int64(i)%100
			m.OnTuple(tuple.New(ts, tuple.Float(100+r.NormFloat64()*60)))
		}
		rs, err := m.OnWatermark(int64((w + 1) * 100))
		if err != nil {
			t.Fatal(err)
		}
		for _, res := range rs {
			modes = append(modes, res.Mode)
		}
	}
	if modes[0] != ModeExact {
		t.Fatalf("first window should fall back at b=10, got %v", modes[0])
	}
	// The tail must be accelerating.
	accel := 0
	for _, mode := range modes[len(modes)-10:] {
		if mode == ModeSampled {
			accel++
		}
	}
	if accel < 8 {
		t.Errorf("only %d/10 tail windows accelerated; budget did not converge (modes: %v)", accel, modes)
	}
	if m.curBudget <= 10 {
		t.Errorf("budget never grew: %d", m.curBudget)
	}
}

func TestAdaptiveBudgetShrinksUnderEasyData(t *testing.T) {
	cfg := mkCfg(agg.Func{Op: agg.Mean}, 2000)
	cfg.DisableIncremental = true
	cfg.Budget = &AIMDBudget{Min: 50, Max: 2000}
	m, _ := NewScalarManager(cfg)
	for w := 0; w < 30; w++ {
		for i := 0; i < 1000; i++ {
			ts := int64(w*100) + int64(i)%100
			m.OnTuple(tuple.New(ts, tuple.Float(100))) // zero variance
		}
		if _, err := m.OnWatermark(int64((w + 1) * 100)); err != nil {
			t.Fatal(err)
		}
	}
	if m.curBudget >= 2000 {
		t.Errorf("budget never shrank on trivial data: %d", m.curBudget)
	}
}
