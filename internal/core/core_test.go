package core

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"spear/internal/agg"
	"spear/internal/metrics"
	"spear/internal/stats"
	"spear/internal/storage"
	"spear/internal/tuple"
	"spear/internal/window"
)

// mkCfg returns a baseline valid scalar config over a time-tumbling
// window of 100 ticks.
func mkCfg(f agg.Func, budget int) Config {
	return Config{
		Spec:         window.Spec{Domain: window.TimeDomain, Range: 100, Slide: 100},
		Agg:          f,
		Value:        tuple.FieldFloat(0),
		Epsilon:      0.10,
		Confidence:   0.95,
		BudgetTuples: budget,
		Store:        storage.NewMemStore(),
		Key:          "t",
		Seed:         1,
	}
}

func feed(t *testing.T, m Manager, vals []float64, tsStep int64) []Result {
	t.Helper()
	var out []Result
	for i, v := range vals {
		rs, err := m.OnTuple(tuple.New(int64(i)*tsStep, tuple.Float(v)))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, rs...)
	}
	return out
}

func TestConfigValidate(t *testing.T) {
	base := mkCfg(agg.Func{Op: agg.Mean}, 100)
	tests := []struct {
		name string
		mut  func(*Config)
	}{
		{"bad spec", func(c *Config) { c.Spec.Range = 0 }},
		{"bad agg", func(c *Config) { c.Agg = agg.Func{Op: agg.Percentile, P: 7} }},
		{"no value", func(c *Config) { c.Value = nil }},
		{"eps 0", func(c *Config) { c.Epsilon = 0 }},
		{"eps 1", func(c *Config) { c.Epsilon = 1 }},
		{"conf 0", func(c *Config) { c.Confidence = 0 }},
		{"budget 0", func(c *Config) { c.BudgetTuples = 0 }},
		{"no store", func(c *Config) { c.Store = nil }},
		{"neg known", func(c *Config) { c.KnownGroups = -1 }},
		{"known scalar", func(c *Config) { c.KnownGroups = 3 }},
		{"neg chunk", func(c *Config) { c.ArchiveChunk = -1 }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mut(&cfg)
			if err := cfg.validate(); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
	good := base
	if err := good.validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if good.ArchiveChunk != 512 {
		t.Errorf("default chunk = %d", good.ArchiveChunk)
	}
}

func TestBudgetBytes(t *testing.T) {
	// The paper's example: 1MB of 8-byte fares → 10⁶/8 − 2.
	if got := BudgetBytes(1_000_000, 8); got != 124998 {
		t.Errorf("BudgetBytes = %d, want 124998", got)
	}
	if got := BudgetBytes(10, 8); got != 1 {
		t.Errorf("tiny budget = %d, want floor of 1", got)
	}
	if got := BudgetBytes(800, 0); got != 98 {
		t.Errorf("default value size = %d, want 98", got)
	}
}

func TestManagerConstructorsRejectWrongShape(t *testing.T) {
	cfg := mkCfg(agg.Func{Op: agg.Mean}, 100)
	cfg.KeyBy = tuple.FieldString(0)
	if _, err := NewScalarManager(cfg); err == nil {
		t.Error("ScalarManager accepted a grouped config")
	}
	if _, err := NewIncrementalManager(cfg); err == nil {
		t.Error("IncrementalManager accepted a grouped config")
	}
	scalar := mkCfg(agg.Median(), 100)
	if _, err := NewGroupedManager(scalar); err == nil {
		t.Error("GroupedManager accepted a scalar config")
	}
	if _, err := NewIncrementalManager(scalar); err == nil {
		t.Error("IncrementalManager accepted a holistic agg")
	}
	bad := mkCfg(agg.Func{Op: agg.Mean}, 0)
	if _, err := NewScalarManager(bad); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := NewExactManager(bad, 0); err == nil {
		t.Error("ExactManager accepted invalid config")
	}
}

func TestScalarIncrementalPath(t *testing.T) {
	cfg := mkCfg(agg.Func{Op: agg.Mean}, 10)
	m, err := NewScalarManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 100 tuples in window [0,100) with values 0..99.
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i)
	}
	feed(t, m, vals, 1)
	rs, err := m.OnWatermark(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 {
		t.Fatalf("%d results", len(rs))
	}
	r := rs[0]
	if r.Mode != ModeIncremental {
		t.Errorf("Mode = %v, want incremental", r.Mode)
	}
	if r.Scalar != 49.5 {
		t.Errorf("mean = %v, want 49.5 (exact)", r.Scalar)
	}
	if r.N != 100 || r.EstError != 0 {
		t.Errorf("N=%d EstError=%v", r.N, r.EstError)
	}
	if !r.Mode.Accelerated() {
		t.Error("incremental should count as accelerated")
	}
}

func TestScalarSampledPathAccelerates(t *testing.T) {
	// Low-variance data, generous budget → sampled result within ε.
	cfg := mkCfg(agg.Func{Op: agg.Mean}, 400)
	cfg.DisableIncremental = true
	reg := metrics.NewRegistry()
	cfg.Metrics = reg.Worker("w")
	m, err := NewScalarManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(2))
	var sum float64
	const n = 5000
	for i := 0; i < n; i++ {
		v := 100 + r.NormFloat64()*10
		sum += v
		// All in window [0,100): keep ts inside.
		if _, err := m.OnTuple(tuple.New(int64(i)%100, tuple.Float(v))); err != nil {
			t.Fatal(err)
		}
	}
	rs, err := m.OnWatermark(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 {
		t.Fatalf("%d results", len(rs))
	}
	res := rs[0]
	if res.Mode != ModeSampled {
		t.Fatalf("Mode = %v, want sampled", res.Mode)
	}
	if res.SampleN != 400 || res.N != n {
		t.Errorf("SampleN=%d N=%d", res.SampleN, res.N)
	}
	exact := sum / n
	if rel := stats.RelativeError(res.Scalar, exact); rel > 0.10 {
		t.Errorf("realized error %.3f > ε", rel)
	}
	if res.EstError <= 0 || res.EstError > 0.10 {
		t.Errorf("EstError = %v, want in (0, 0.10]", res.EstError)
	}
	if cfg.Metrics.WindowsAccelerated.Load() != 1 {
		t.Error("metrics should count the accelerated window")
	}
}

func TestScalarFallbackToExact(t *testing.T) {
	// Tiny budget + huge variance → the CI check fails and the exact
	// result must come back from secondary storage, bit-exact.
	cfg := mkCfg(agg.Func{Op: agg.Mean}, 5)
	cfg.DisableIncremental = true
	cfg.ArchiveChunk = 7 // force multiple chunks
	reg := metrics.NewRegistry()
	cfg.Metrics = reg.Worker("w")
	m, err := NewScalarManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	var sum float64
	const n = 500
	for i := 0; i < n; i++ {
		v := math.Abs(r.NormFloat64()) * 1e6 * r.Float64()
		sum += v
		if _, err := m.OnTuple(tuple.New(int64(i)%100, tuple.Float(v))); err != nil {
			t.Fatal(err)
		}
	}
	rs, err := m.OnWatermark(100)
	if err != nil {
		t.Fatal(err)
	}
	res := rs[0]
	if res.Mode != ModeExact {
		t.Fatalf("Mode = %v, want exact", res.Mode)
	}
	if !res.FetchedFromStore {
		t.Error("exact fallback must fetch from S")
	}
	exact := sum / n
	if math.Abs(res.Scalar-exact) > 1e-9*exact {
		t.Errorf("fallback mean = %v, want %v (bit-exact)", res.Scalar, exact)
	}
	if res.N != n || res.SampleN != n {
		t.Errorf("N=%d SampleN=%d", res.N, res.SampleN)
	}
	if cfg.Metrics.EstimationFailures.Load() != 1 {
		t.Error("estimation failure not counted")
	}
}

func TestScalarQuantileBudgetRule(t *testing.T) {
	// ε=0.10, α=0.95 needs n ≥ 185 (Hoeffding). A budget of 150 must
	// refuse acceleration; 400 must accelerate.
	for _, tc := range []struct {
		budget int
		want   Mode
	}{
		{150, ModeExact},
		{400, ModeSampled},
	} {
		cfg := mkCfg(agg.Median(), tc.budget)
		m, err := NewScalarManager(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(4))
		vals := make([]float64, 3000)
		for i := range vals {
			vals[i] = r.Float64() * 1000
		}
		for i, v := range vals {
			m.OnTuple(tuple.New(int64(i)%100, tuple.Float(v)))
		}
		rs, err := m.OnWatermark(100)
		if err != nil {
			t.Fatal(err)
		}
		res := rs[0]
		if res.Mode != tc.want {
			t.Errorf("budget %d: Mode = %v, want %v", tc.budget, res.Mode, tc.want)
		}
		exact := agg.Median().Compute(vals)
		tol := 1e-9
		if tc.want == ModeSampled {
			tol = 0.25 // rank error ε=10% on uniform data ≈ value error 20% worst case
		}
		if rel := stats.RelativeError(res.Scalar, exact); rel > tol {
			t.Errorf("budget %d: median %v vs exact %v (rel %.3f)", tc.budget, res.Scalar, exact, rel)
		}
	}
}

func TestScalarSmallWindowIsExactViaSample(t *testing.T) {
	// A window smaller than the budget is fully sampled: the
	// "approximate" result is exact with ε̂ = 0.
	cfg := mkCfg(agg.Median(), 1000)
	m, _ := NewScalarManager(cfg)
	vals := []float64{5, 1, 9, 3, 7}
	for i, v := range vals {
		m.OnTuple(tuple.New(int64(i), tuple.Float(v)))
	}
	rs, err := m.OnWatermark(100)
	if err != nil {
		t.Fatal(err)
	}
	res := rs[0]
	if res.Mode != ModeSampled || res.EstError != 0 {
		t.Errorf("Mode=%v EstError=%v", res.Mode, res.EstError)
	}
	if res.Scalar != 5 {
		t.Errorf("median = %v, want 5", res.Scalar)
	}
}

func TestScalarSlidingWindows(t *testing.T) {
	cfg := mkCfg(agg.Func{Op: agg.Sum}, 1000)
	cfg.Spec = window.Spec{Domain: window.TimeDomain, Range: 100, Slide: 50}
	m, _ := NewScalarManager(cfg)
	// Value 1 per tick for ts 0..199 → every full window sums to 100.
	for ts := int64(0); ts < 200; ts++ {
		m.OnTuple(tuple.New(ts, tuple.Float(1)))
	}
	rs, err := m.OnWatermark(200)
	if err != nil {
		t.Fatal(err)
	}
	full := 0
	for _, r := range rs {
		if r.Start >= 0 && r.End <= 200 {
			if r.Scalar != 100 {
				t.Errorf("window [%d,%d) sum = %v, want 100", r.Start, r.End, r.Scalar)
			}
			full++
		}
	}
	if full < 3 {
		t.Errorf("only %d full windows fired", full)
	}
}

func TestScalarCountWindows(t *testing.T) {
	cfg := mkCfg(agg.Func{Op: agg.Mean}, 1000)
	cfg.Spec = window.CountTumbling(50)
	m, _ := NewScalarManager(cfg)
	var got []Result
	for i := 0; i < 175; i++ {
		rs, err := m.OnTuple(tuple.New(int64(i*37), tuple.Float(float64(i))))
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rs...)
	}
	if len(got) != 3 {
		t.Fatalf("fired %d count windows, want 3", len(got))
	}
	// First window holds values 0..49 → mean 24.5.
	if got[0].Scalar != 24.5 || got[0].N != 50 {
		t.Errorf("first window: %+v", got[0])
	}
	// Watermarks are ignored.
	if rs, err := m.OnWatermark(1 << 50); err != nil || rs != nil {
		t.Errorf("count-domain watermark: %v, %v", rs, err)
	}
}

func TestScalarLateTuplesDropped(t *testing.T) {
	cfg := mkCfg(agg.Func{Op: agg.Mean}, 10)
	m, _ := NewScalarManager(cfg)
	m.OnTuple(tuple.New(50, tuple.Float(1)))
	m.OnWatermark(100)
	m.OnTuple(tuple.New(20, tuple.Float(99)))
	if m.LateDropped() != 1 {
		t.Errorf("LateDropped = %d", m.LateDropped())
	}
}

func TestScalarArchiveEviction(t *testing.T) {
	cfg := mkCfg(agg.Func{Op: agg.Mean}, 10)
	store := storage.NewMemStore()
	cfg.Store = store
	cfg.ArchiveChunk = 4
	m, _ := NewScalarManager(cfg)
	for ts := int64(0); ts < 500; ts++ {
		m.OnTuple(tuple.New(ts, tuple.Float(1)))
	}
	if _, err := m.OnWatermark(500); err != nil {
		t.Fatal(err)
	}
	// Windows [0,100)... [400,500) all fired; every pane evicted.
	if keys := store.Keys(); len(keys) != 0 {
		t.Errorf("panes survived eviction: %v", keys)
	}
}

func TestScalarMemUsageStaysNearBudget(t *testing.T) {
	// Fig. 7's claim: SPEAr memory is ≈b regardless of window size.
	cfg := mkCfg(agg.Median(), 150)
	cfg.ArchiveChunk = 64
	m, _ := NewScalarManager(cfg)
	for i := 0; i < 50000; i++ {
		m.OnTuple(tuple.New(int64(i)%100, tuple.Float(float64(i))))
	}
	// Budget 150 tuples ≈ 1.2KB + chunk buffer; must stay way below
	// the 50K-tuple window (~2MB as tuples).
	if m.MemUsage() > 20000 {
		t.Errorf("MemUsage = %d, want ≈ budget-scale", m.MemUsage())
	}
}

func TestGroupedUnknownGroupsAccelerates(t *testing.T) {
	cfg := mkCfg(agg.Func{Op: agg.Mean}, 500)
	cfg.KeyBy = tuple.FieldString(0)
	cfg.Value = tuple.FieldFloat(1)
	cfg.DisableIncremental = true // exercise the stratified-sampling path
	reg := metrics.NewRegistry()
	cfg.Metrics = reg.Worker("w")
	m, err := NewGroupedManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	groups := []string{"g0", "g1", "g2", "g3"}
	exactSum := map[string]float64{}
	exactN := map[string]float64{}
	const n = 8000
	for i := 0; i < n; i++ {
		g := groups[r.Intn(len(groups))]
		v := 50 + 10*float64(g[1]-'0') + r.NormFloat64()*3
		exactSum[g] += v
		exactN[g]++
		if _, err := m.OnTuple(tuple.New(int64(i)%100, tuple.String_(g), tuple.Float(v))); err != nil {
			t.Fatal(err)
		}
	}
	rs, err := m.OnWatermark(100)
	if err != nil {
		t.Fatal(err)
	}
	res := rs[0]
	if res.Mode != ModeSampled {
		t.Fatalf("Mode = %v, want sampled", res.Mode)
	}
	if len(res.Groups) != len(groups) {
		t.Fatalf("R̂ has %d groups, want %d (|R̂|=|R| required)", len(res.Groups), len(groups))
	}
	for g, sum := range exactSum {
		exact := sum / exactN[g]
		if rel := stats.RelativeError(res.Groups[g], exact); rel > 0.10 {
			t.Errorf("group %s: est %v vs exact %v (rel %.3f)", g, res.Groups[g], exact, rel)
		}
	}
	if res.SampleN > 500 {
		t.Errorf("SampleN %d exceeds budget", res.SampleN)
	}
}

func TestGroupedIncrementalFastPath(t *testing.T) {
	// Non-holistic grouped aggregates come straight from the per-group
	// metadata: exact results, ModeIncremental, no sampling error.
	cfg := mkCfg(agg.Func{Op: agg.Mean}, 500)
	cfg.KeyBy = tuple.FieldString(0)
	cfg.Value = tuple.FieldFloat(1)
	m, err := NewGroupedManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(55))
	sum := map[string]float64{}
	n := map[string]float64{}
	for i := 0; i < 5000; i++ {
		g := []string{"a", "b", "c"}[r.Intn(3)]
		v := r.Float64() * 1e6 // wild variance: irrelevant, result is exact
		sum[g] += v
		n[g]++
		m.OnTuple(tuple.New(int64(i)%100, tuple.String_(g), tuple.Float(v)))
	}
	rs, err := m.OnWatermark(100)
	if err != nil {
		t.Fatal(err)
	}
	res := rs[0]
	if res.Mode != ModeIncremental {
		t.Fatalf("Mode = %v, want incremental", res.Mode)
	}
	if res.EstError != 0 {
		t.Errorf("EstError = %v", res.EstError)
	}
	for g := range sum {
		exact := sum[g] / n[g]
		if math.Abs(res.Groups[g]-exact) > 1e-9*exact {
			t.Errorf("group %s: %v vs %v (must be exact)", g, res.Groups[g], exact)
		}
	}
}

func TestGroupedRevertsWhenGroupsExceedBudget(t *testing.T) {
	// More distinct groups than budget slots → normal processing
	// (§4.1: "If b can not accommodate enough values, then SPEAr
	// reverts back to normal processing").
	cfg := mkCfg(agg.Func{Op: agg.Mean}, 10)
	cfg.KeyBy = tuple.FieldString(0)
	cfg.Value = tuple.FieldFloat(1)
	m, _ := NewGroupedManager(cfg)
	for i := 0; i < 100; i++ {
		g := string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
		m.OnTuple(tuple.New(int64(i)%100, tuple.String_(g), tuple.Float(float64(i))))
	}
	rs, err := m.OnWatermark(100)
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Mode != ModeExact {
		t.Errorf("Mode = %v, want exact (budget too small for groups)", rs[0].Mode)
	}
	if len(rs[0].Groups) == 0 {
		t.Error("exact grouped result empty")
	}
}

func TestGroupedExactMatchesComputeGrouped(t *testing.T) {
	// Force exact fallback with wild variance and compare with the
	// reference implementation.
	cfg := mkCfg(agg.Func{Op: agg.Mean}, 20)
	cfg.KeyBy = tuple.FieldString(0)
	cfg.Value = tuple.FieldFloat(1)
	m, _ := NewGroupedManager(cfg)
	r := rand.New(rand.NewSource(6))
	var keys []string
	var vals []float64
	for i := 0; i < 2000; i++ {
		g := []string{"a", "b", "c"}[r.Intn(3)]
		v := r.Float64() * math.Pow(10, float64(r.Intn(8)))
		keys = append(keys, g)
		vals = append(vals, v)
		m.OnTuple(tuple.New(int64(i)%100, tuple.String_(g), tuple.Float(v)))
	}
	rs, _ := m.OnWatermark(100)
	res := rs[0]
	if res.Mode != ModeExact {
		t.Skipf("variance not wild enough; Mode=%v", res.Mode)
	}
	want := agg.ComputeGrouped(keys, vals, agg.Func{Op: agg.Mean})
	for g, v := range want {
		if math.Abs(res.Groups[g]-v) > 1e-9*math.Abs(v) {
			t.Errorf("group %s: %v vs %v", g, res.Groups[g], v)
		}
	}
}

func TestGroupedKnownGroupsNoScan(t *testing.T) {
	cfg := mkCfg(agg.Func{Op: agg.Mean}, 400)
	cfg.KeyBy = tuple.FieldString(0)
	cfg.Value = tuple.FieldFloat(1)
	cfg.KnownGroups = 4
	m, err := NewGroupedManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	groups := []string{"c0", "c1", "c2", "c3"}
	exactSum := map[string]float64{}
	exactN := map[string]float64{}
	for i := 0; i < 10000; i++ {
		g := groups[r.Intn(4)]
		v := 100 + r.NormFloat64()*5
		exactSum[g] += v
		exactN[g]++
		m.OnTuple(tuple.New(int64(i)%100, tuple.String_(g), tuple.Float(v)))
	}
	rs, err := m.OnWatermark(100)
	if err != nil {
		t.Fatal(err)
	}
	res := rs[0]
	if res.Mode != ModeSampled {
		t.Fatalf("Mode = %v", res.Mode)
	}
	// Equal split: 4 groups × 100 slots.
	if res.SampleN != 400 {
		t.Errorf("SampleN = %d, want 400", res.SampleN)
	}
	for g := range exactSum {
		exact := exactSum[g] / exactN[g]
		if rel := stats.RelativeError(res.Groups[g], exact); rel > 0.10 {
			t.Errorf("group %s error %.3f", g, rel)
		}
	}
}

func TestGroupedHolistic(t *testing.T) {
	// Grouped percentile: holistic per group, needs per-group strata.
	cfg := mkCfg(agg.Func{Op: agg.Percentile, P: 0.95}, 2000)
	cfg.KeyBy = tuple.FieldString(0)
	cfg.Value = tuple.FieldFloat(1)
	m, _ := NewGroupedManager(cfg)
	r := rand.New(rand.NewSource(8))
	byGroup := map[string][]float64{}
	for i := 0; i < 20000; i++ {
		g := []string{"x", "y"}[r.Intn(2)]
		v := r.Float64() * 100
		byGroup[g] = append(byGroup[g], v)
		m.OnTuple(tuple.New(int64(i)%100, tuple.String_(g), tuple.Float(v)))
	}
	rs, _ := m.OnWatermark(100)
	res := rs[0]
	if res.Mode != ModeSampled {
		t.Fatalf("Mode = %v (budget 2000 ≫ Hoeffding bound per group)", res.Mode)
	}
	for g, vs := range byGroup {
		exact := (agg.Func{Op: agg.Percentile, P: 0.95}).Compute(vs)
		// ε is a rank error; on uniform data value error ≈ rank error.
		if rel := stats.RelativeError(res.Groups[g], exact); rel > 0.15 {
			t.Errorf("group %s: %v vs %v", g, res.Groups[g], exact)
		}
	}
}

func TestGroupedCountDomain(t *testing.T) {
	cfg := mkCfg(agg.Func{Op: agg.Mean}, 100)
	cfg.Spec = window.CountTumbling(100)
	cfg.KeyBy = tuple.FieldString(0)
	cfg.Value = tuple.FieldFloat(1)
	m, _ := NewGroupedManager(cfg)
	var got []Result
	for i := 0; i < 250; i++ {
		rs, err := m.OnTuple(tuple.New(int64(i*11), tuple.String_("g"), tuple.Float(2)))
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rs...)
	}
	if len(got) != 2 {
		t.Fatalf("fired %d windows, want 2", len(got))
	}
	for _, r := range got {
		if r.Groups["g"] != 2 {
			t.Errorf("mean = %v, want 2", r.Groups["g"])
		}
		if r.N != 100 {
			t.Errorf("N = %d", r.N)
		}
	}
}

func TestCustomScalarEstimator(t *testing.T) {
	// A user estimator that always refuses acceleration.
	cfg := mkCfg(agg.Func{Op: agg.Mean}, 1000)
	cfg.DisableIncremental = true
	cfg.ScalarEstimator = func(s ScalarState) (float64, bool) {
		return math.Inf(1), false
	}
	m, _ := NewScalarManager(cfg)
	for i := 0; i < 100; i++ {
		m.OnTuple(tuple.New(int64(i), tuple.Float(5)))
	}
	rs, err := m.OnWatermark(100)
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Mode != ModeExact {
		t.Errorf("custom estimator ignored: %v", rs[0].Mode)
	}
	if rs[0].Scalar != 5 {
		t.Errorf("fallback mean = %v", rs[0].Scalar)
	}

	// And one that always accepts with a fixed error.
	cfg2 := mkCfg(agg.Func{Op: agg.Mean}, 10)
	cfg2.DisableIncremental = true
	cfg2.ScalarEstimator = func(s ScalarState) (float64, bool) { return 0.01, true }
	m2, _ := NewScalarManager(cfg2)
	for i := 0; i < 100; i++ {
		m2.OnTuple(tuple.New(int64(i), tuple.Float(5)))
	}
	rs2, _ := m2.OnWatermark(100)
	if rs2[0].Mode != ModeSampled || rs2[0].EstError != 0.01 {
		t.Errorf("custom estimator not used: %+v", rs2[0])
	}
}

func TestCustomGroupedEstimator(t *testing.T) {
	cfg := mkCfg(agg.Func{Op: agg.Mean}, 100)
	cfg.KeyBy = tuple.FieldString(0)
	cfg.Value = tuple.FieldFloat(1)
	cfg.DisableIncremental = true
	called := false
	cfg.GroupedEstimator = func(g GroupedState) (float64, bool) {
		called = true
		if g.N == 0 || g.Groups.Len() == 0 {
			t.Error("estimator got empty state")
		}
		return math.Inf(1), false
	}
	m, _ := NewGroupedManager(cfg)
	for i := 0; i < 50; i++ {
		m.OnTuple(tuple.New(int64(i), tuple.String_("g"), tuple.Float(1)))
	}
	rs, _ := m.OnWatermark(100)
	if !called {
		t.Error("custom grouped estimator never called")
	}
	if rs[0].Mode != ModeExact {
		t.Errorf("Mode = %v", rs[0].Mode)
	}
}

func TestExactManagerMatchesAgg(t *testing.T) {
	cfg := mkCfg(agg.Median(), 1)
	m, err := NewExactManager(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	vals := []float64{9, 1, 5, 3, 7}
	for i, v := range vals {
		m.OnTuple(tuple.New(int64(i), tuple.Float(v)))
	}
	rs, err := m.OnWatermark(100)
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Mode != ModeExact || rs[0].Scalar != 5 {
		t.Errorf("exact = %+v", rs[0])
	}
	if rs[0].Mode.Accelerated() {
		t.Error("exact must not count as accelerated")
	}
}

func TestExactManagerGrouped(t *testing.T) {
	cfg := mkCfg(agg.Func{Op: agg.Sum}, 1)
	cfg.KeyBy = tuple.FieldString(0)
	cfg.Value = tuple.FieldFloat(1)
	m, _ := NewExactManager(cfg, 0)
	for i := 0; i < 10; i++ {
		g := []string{"a", "b"}[i%2]
		m.OnTuple(tuple.New(int64(i), tuple.String_(g), tuple.Float(1)))
	}
	rs, _ := m.OnWatermark(100)
	if rs[0].Groups["a"] != 5 || rs[0].Groups["b"] != 5 {
		t.Errorf("grouped sums = %v", rs[0].Groups)
	}
}

func TestExactManagerSpill(t *testing.T) {
	cfg := mkCfg(agg.Func{Op: agg.Sum}, 1)
	sz := tuple.New(0, tuple.Float(0)).MemSize()
	m, err := NewExactManager(cfg, 10*sz)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		m.OnTuple(tuple.New(int64(i)%100, tuple.Float(1)))
	}
	rs, err := m.OnWatermark(100)
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Scalar != 100 {
		t.Errorf("sum = %v, want 100 (spilled tuples must count)", rs[0].Scalar)
	}
	if !rs[0].FetchedFromStore {
		t.Error("spilled window should be marked fetched")
	}
}

func TestIncrementalManager(t *testing.T) {
	cfg := mkCfg(agg.Func{Op: agg.Mean}, 1)
	reg := metrics.NewRegistry()
	cfg.Metrics = reg.Worker("w")
	m, err := NewIncrementalManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		m.OnTuple(tuple.New(int64(i), tuple.Float(float64(i))))
	}
	rs, err := m.OnWatermark(100)
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Scalar != 49.5 || rs[0].Mode != ModeIncremental {
		t.Errorf("%+v", rs[0])
	}
	// Memory is O(active windows), not O(tuples).
	if m.MemUsage() > 1000 {
		t.Errorf("MemUsage = %d", m.MemUsage())
	}
	// A late tuple is dropped and must not disturb the next window.
	m.OnTuple(tuple.New(5, tuple.Float(999)))
	m.OnTuple(tuple.New(150, tuple.Float(7)))
	rs, err = m.OnWatermark(200)
	if err != nil || len(rs) != 1 {
		t.Fatalf("window [100,200): %v, %v", rs, err)
	}
	if rs[0].Scalar != 7 {
		t.Errorf("late tuple leaked into mean: %v", rs[0].Scalar)
	}
	// An empty window produces no result.
	if rs, _ := m.OnWatermark(300); rs != nil {
		t.Errorf("empty window fired: %v", rs)
	}
}

func TestIncrementalManagerCountDomain(t *testing.T) {
	cfg := mkCfg(agg.Func{Op: agg.Sum}, 1)
	cfg.Spec = window.CountTumbling(10)
	m, _ := NewIncrementalManager(cfg)
	var got []Result
	for i := 0; i < 25; i++ {
		rs, _ := m.OnTuple(tuple.New(99999, tuple.Float(1)))
		got = append(got, rs...)
	}
	if len(got) != 2 || got[0].Scalar != 10 {
		t.Errorf("count-domain incremental: %+v", got)
	}
	if rs, _ := m.OnWatermark(1 << 30); rs != nil {
		t.Error("watermark should be ignored in count domain")
	}
}

func TestModeString(t *testing.T) {
	if ModeExact.String() != "exact" || ModeSampled.String() != "sampled" ||
		ModeIncremental.String() != "incremental" {
		t.Error("mode names wrong")
	}
}

func TestResultString(t *testing.T) {
	r := Result{Start: 0, End: 100, Mode: ModeSampled, Scalar: 5, N: 100, SampleN: 10}
	if r.String() == "" {
		t.Error("scalar String empty")
	}
	r.Groups = map[string]float64{"a": 1}
	if r.String() == "" {
		t.Error("grouped String empty")
	}
}

// Statistical acceptance: over many windows, accelerated mean results
// must violate ε no more often than ≈(1−α) with slack.
func TestAccuracyGuaranteeOverWindows(t *testing.T) {
	cfg := mkCfg(agg.Func{Op: agg.Mean}, 1000)
	cfg.DisableIncremental = true
	m, _ := NewScalarManager(cfg)

	exact := map[window.ID]*stats.Welford{}
	r := rand.New(rand.NewSource(42))
	var results []Result
	const windows = 120
	for w := 0; w < windows; w++ {
		base := 200 + 50*math.Sin(float64(w)/5)
		for i := 0; i < 3000; i++ {
			ts := int64(w*100) + int64(i)%100
			v := base + r.NormFloat64()*base // CV = 1
			if v < 0 {
				v = -v
			}
			id, _ := cfg.Spec.Assign(ts)
			if exact[id] == nil {
				exact[id] = &stats.Welford{}
			}
			exact[id].Add(v)
			m.OnTuple(tuple.New(ts, tuple.Float(v)))
		}
		rs, err := m.OnWatermark(int64((w + 1) * 100))
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, rs...)
	}
	if len(results) < windows-1 {
		t.Fatalf("only %d results", len(results))
	}
	accelerated, violations := 0, 0
	for _, res := range results {
		if res.Mode != ModeSampled {
			continue
		}
		accelerated++
		ex := exact[res.WindowID].Mean()
		if stats.RelativeError(res.Scalar, ex) > cfg.Epsilon {
			violations++
		}
	}
	if accelerated < windows/2 {
		t.Fatalf("only %d windows accelerated", accelerated)
	}
	// Nominal violation rate ≤ 5%; allow 12% for sampling noise.
	if rate := float64(violations) / float64(accelerated); rate > 0.12 {
		t.Errorf("violation rate %.3f over %d accelerated windows", rate, accelerated)
	}
}

func TestEstimatorDefaults(t *testing.T) {
	// Min/Max cannot be accelerated from a partial sample.
	s := ScalarState{
		Sample: []float64{1, 2, 3}, N: 100,
		Stats: &stats.Welford{}, Epsilon: 0.1, Confidence: 0.95,
		Agg: agg.Func{Op: agg.Min},
	}
	if _, ok := MeanLikeEstimator(s); ok {
		t.Error("min accelerated from partial sample")
	}
	// Count is always exact.
	s.Agg = agg.Func{Op: agg.Count}
	if e, ok := MeanLikeEstimator(s); !ok || e != 0 {
		t.Errorf("count estimator = %v, %v", e, ok)
	}
	// Empty sample refuses.
	if _, ok := MeanLikeEstimator(ScalarState{N: 10, Agg: agg.Func{Op: agg.Mean}, Stats: &stats.Welford{}}); ok {
		t.Error("empty sample accepted")
	}
	if _, ok := QuantileEstimator(ScalarState{N: 10}); ok {
		t.Error("empty quantile sample accepted")
	}
	// Variance needs n ≥ 2.
	s.Agg = agg.Func{Op: agg.Variance}
	s.Sample = []float64{1}
	if _, ok := MeanLikeEstimator(s); ok {
		t.Error("variance from n=1 accepted")
	}
	// StdDev's error is half the variance's.
	var w stats.Welford
	for i := 0; i < 50; i++ {
		w.Add(float64(i))
	}
	sVar := ScalarState{Sample: make([]float64, 50), N: 1000, Stats: &w,
		Confidence: 0.95, Agg: agg.Func{Op: agg.Variance}}
	sStd := sVar
	sStd.Agg = agg.Func{Op: agg.StdDev}
	eVar, _ := MeanLikeEstimator(sVar)
	eStd, _ := MeanLikeEstimator(sStd)
	if math.Abs(eStd-eVar/2) > 1e-12 {
		t.Errorf("stddev error %v, variance %v", eStd, eVar)
	}
}

func TestArchivePaneLifecycle(t *testing.T) {
	store := storage.NewMemStore()
	spec := window.Spec{Domain: window.TimeDomain, Range: 30, Slide: 10}
	a := newArchive(store, "w", spec, 3, false)
	for ts := int64(0); ts < 50; ts++ {
		if err := a.add(tuple.New(ts, tuple.Float(float64(ts)))); err != nil {
			t.Fatal(err)
		}
	}
	// Fetch window [10, 40): must return exactly ts 10..39 including
	// pending unflushed chunks.
	got, err := a.fetch(10, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 30 {
		t.Fatalf("fetched %d, want 30", len(got))
	}
	seen := map[int64]bool{}
	for _, tp := range got {
		if tp.Ts < 10 || tp.Ts >= 40 {
			t.Errorf("fetched out-of-range ts %d", tp.Ts)
		}
		seen[tp.Ts] = true
	}
	if len(seen) != 30 {
		t.Errorf("duplicates or gaps: %d distinct", len(seen))
	}
	// Evict everything before 30 and refetch.
	if err := a.evictBefore(30); err != nil {
		t.Fatal(err)
	}
	got, err = a.fetch(0, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("evicted panes still fetchable: %d tuples", len(got))
	}
	if a.memUsage() < 0 {
		t.Error("memUsage negative")
	}
	// Empty archive eviction is a no-op.
	b := newArchive(store, "x", spec, 3, false)
	if err := b.evictBefore(100); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScalarManagerTuple(b *testing.B) {
	cfg := mkCfg(agg.Median(), 150)
	cfg.Spec = window.Sliding(45*time.Second, 15*time.Second)
	m, _ := NewScalarManager(cfg)
	step := int64(time.Millisecond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.OnTuple(tuple.New(int64(i)*step, tuple.Float(float64(i&1023))))
		if i%100000 == 99999 {
			m.OnWatermark(int64(i) * step)
		}
	}
}
