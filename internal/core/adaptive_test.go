package core

import (
	"math"
	"math/rand"
	"testing"

	"spear/internal/agg"
	"spear/internal/control"
	"spear/internal/metrics"
	"spear/internal/sample"
	"spear/internal/stats"
	"spear/internal/tuple"
	"spear/internal/window"
)

// ---- budget retuning (scalar) ----

func TestScalarSetBudgetResizesReservoirs(t *testing.T) {
	cfg := mkCfg(agg.Func{Op: agg.Mean}, 400)
	cfg.DisableIncremental = true
	m, err := NewScalarManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		m.OnTuple(tuple.New(int64(i)%100, tuple.Float(100+r.NormFloat64()*10)))
	}
	m.SetBudget(50)
	for _, w := range m.wins {
		if w.res.Len() != 50 || w.res.Cap() != 50 {
			t.Fatalf("open window reservoir len=%d cap=%d after SetBudget(50)", w.res.Len(), w.res.Cap())
		}
	}
	rs, err := m.OnWatermark(100)
	if err != nil {
		t.Fatal(err)
	}
	if got := rs[0].Budget; got != 50 {
		t.Errorf("Result.Budget = %d, want the live budget 50", got)
	}
	if rs[0].Epsilon != cfg.Epsilon || rs[0].Confidence != cfg.Confidence {
		t.Errorf("Result contract fields (%v, %v) not echoed", rs[0].Epsilon, rs[0].Confidence)
	}
}

func TestScalarSetBudgetZeroForcesExact(t *testing.T) {
	cfg := mkCfg(agg.Func{Op: agg.Mean}, 400)
	cfg.DisableIncremental = true
	m, _ := NewScalarManager(cfg)
	m.SetBudget(0)
	var sum float64
	const n = 300
	for i := 0; i < n; i++ {
		v := float64(i)
		sum += v
		m.OnTuple(tuple.New(int64(i)%100, tuple.Float(v)))
	}
	for _, w := range m.wins {
		if w.res != nil {
			t.Fatal("budget 0 must drop reservoirs")
		}
	}
	rs, err := m.OnWatermark(100)
	if err != nil {
		t.Fatal(err)
	}
	res := rs[0]
	if res.Mode != ModeExact || !res.FetchedFromStore {
		t.Fatalf("budget 0 window: Mode=%v fetched=%v, want exact from S", res.Mode, res.FetchedFromStore)
	}
	if math.Abs(res.Scalar-sum/n) > 1e-9 {
		t.Errorf("exact mean %v, want %v", res.Scalar, sum/n)
	}
	if res.Budget != 0 {
		t.Errorf("Result.Budget = %d, want 0", res.Budget)
	}
}

// ---- load shedding (scalar) ----

func TestScalarShedBoundFailsIsModeShed(t *testing.T) {
	// Huge variance + tiny budget: the bound fails. With shedding on,
	// the archive is incomplete, so the window must come back as
	// ModeShed — sample answer, realized bound, contract not met.
	cfg := mkCfg(agg.Func{Op: agg.Mean}, 5)
	cfg.DisableIncremental = true
	reg := metrics.NewRegistry()
	cfg.Metrics = reg.Worker("w")
	m, _ := NewScalarManager(cfg)
	m.SetShedding(true)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		m.OnTuple(tuple.New(int64(i)%100, tuple.Float(math.Abs(r.NormFloat64())*1e6*r.Float64())))
	}
	rs, err := m.OnWatermark(100)
	if err != nil {
		t.Fatal(err)
	}
	res := rs[0]
	if res.Mode != ModeShed {
		t.Fatalf("Mode = %v, want shed", res.Mode)
	}
	if res.ContractMet() {
		t.Error("ModeShed must report ContractMet() == false")
	}
	if !(res.EstError > cfg.Epsilon) {
		t.Errorf("EstError = %v, want the realized bound above ε=%v", res.EstError, cfg.Epsilon)
	}
	if res.SampleN != 5 {
		t.Errorf("SampleN = %d, want the sample size 5", res.SampleN)
	}
	if res.FetchedFromStore {
		t.Error("a shed window must not touch S")
	}
	if got := cfg.Metrics.WindowsShed.Load(); got != 1 {
		t.Errorf("WindowsShed = %d, want 1", got)
	}
	if got := cfg.Metrics.TuplesShed.Load(); got != 500 {
		t.Errorf("TuplesShed = %d, want 500", got)
	}
}

func TestScalarShedInvisibleWhenBoundPasses(t *testing.T) {
	// Low variance + generous budget: the bound passes, so shedding is
	// invisible in the result — ModeSampled, contract met.
	cfg := mkCfg(agg.Func{Op: agg.Mean}, 400)
	cfg.DisableIncremental = true
	m, _ := NewScalarManager(cfg)
	m.SetShedding(true)
	r := rand.New(rand.NewSource(2))
	var sum float64
	const n = 5000
	for i := 0; i < n; i++ {
		v := 100 + r.NormFloat64()*10
		sum += v
		m.OnTuple(tuple.New(int64(i)%100, tuple.Float(v)))
	}
	rs, err := m.OnWatermark(100)
	if err != nil {
		t.Fatal(err)
	}
	res := rs[0]
	if res.Mode != ModeSampled || !res.ContractMet() {
		t.Fatalf("Mode = %v (contract %v), want sampled with contract met", res.Mode, res.ContractMet())
	}
	if rel := stats.RelativeError(res.Scalar, sum/n); rel > cfg.Epsilon {
		t.Errorf("realized error %.3f above ε despite passing bound", rel)
	}
}

func TestScalarShedRefusedAtZeroBudget(t *testing.T) {
	cfg := mkCfg(agg.Func{Op: agg.Mean}, 10)
	m, _ := NewScalarManager(cfg)
	m.SetBudget(0)
	m.SetShedding(true)
	if m.shed {
		t.Fatal("shedding with no sample to answer from must be refused")
	}
}

// ---- controller cell sync ----

func TestCellDrivesScalarManager(t *testing.T) {
	cfg := mkCfg(agg.Func{Op: agg.Mean}, 200)
	cfg.DisableIncremental = true
	cfg.Cell = control.NewCell(200)
	m, _ := NewScalarManager(cfg)
	for i := 0; i < 300; i++ {
		m.OnTuple(tuple.New(int64(i)%100, tuple.Float(float64(i))))
	}
	cfg.Cell.Set(40, true)
	m.OnTuple(tuple.New(0, tuple.Float(1)))
	if m.curBudget != 40 || !m.shed {
		t.Fatalf("after cell publish: budget=%d shed=%v, want 40/true", m.curBudget, m.shed)
	}
	for _, w := range m.wins {
		if w.res.Cap() != 40 {
			t.Fatalf("reservoir cap %d, want resized to 40", w.res.Cap())
		}
	}
	cfg.Cell.Set(200, false)
	m.OnTuple(tuple.New(1, tuple.Float(2)))
	if m.curBudget != 200 || m.shed {
		t.Fatalf("after recovery publish: budget=%d shed=%v, want 200/false", m.curBudget, m.shed)
	}
}

func TestCellDrivesGroupedManager(t *testing.T) {
	cfg := mkCfg(agg.Func{Op: agg.Mean}, 90)
	cfg.KeyBy = tuple.FieldString(1)
	cfg.KnownGroups = 3
	cfg.Cell = control.NewCell(90)
	m, err := NewGroupedManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"a", "b", "c"}
	for i := 0; i < 600; i++ {
		m.OnTuple(tuple.New(int64(i)%100, tuple.Float(float64(i)), tuple.String_(keys[i%3])))
	}
	cfg.Cell.Set(30, false)
	m.OnTuple(tuple.New(0, tuple.Float(1), tuple.String_("a")))
	if m.curBudget != 30 {
		t.Fatalf("budget %d, want 30", m.curBudget)
	}
	for _, w := range m.wins {
		if w.known == nil || w.known.PerGroup() != 10 {
			t.Fatalf("per-group cap not retuned to 30/3 = 10")
		}
	}
}

// ---- grouped budget accounting (satellite: perGroupCap) ----

func TestGroupedKnownGroupsNeverExceedBudget(t *testing.T) {
	// Regression: with KnownGroups > BudgetTuples the old floor-to-1
	// per-group cap let the aggregate sample reach KnownGroups tuples,
	// silently exceeding b. Now the cap floors to zero: no reservoirs,
	// windows answered exactly.
	cfg := mkCfg(agg.Func{Op: agg.Mean}, 4)
	cfg.KeyBy = tuple.FieldString(1)
	cfg.KnownGroups = 10
	cfg.DisableIncremental = true
	m, err := NewGroupedManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		key := string(rune('a' + i%10))
		m.OnTuple(tuple.New(int64(i)%100, tuple.Float(float64(i)), tuple.String_(key)))
	}
	for _, w := range m.wins {
		if w.known != nil {
			t.Fatal("per-group cap 4/10 = 0 must mean no reservoirs at all")
		}
	}
	rs, err := m.OnWatermark(100)
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Mode != ModeExact {
		t.Fatalf("Mode = %v, want exact (no sample within budget)", rs[0].Mode)
	}
	if len(rs[0].Groups) != 10 {
		t.Fatalf("%d groups, want all 10", len(rs[0].Groups))
	}
}

func TestGroupedSampleWithinBudget(t *testing.T) {
	// With a feasible split the aggregate sample must respect b.
	cfg := mkCfg(agg.Func{Op: agg.Mean}, 7)
	cfg.KeyBy = tuple.FieldString(1)
	cfg.KnownGroups = 3
	m, err := NewGroupedManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"a", "b", "c"}
	for i := 0; i < 900; i++ {
		m.OnTuple(tuple.New(int64(i)%100, tuple.Float(float64(i)), tuple.String_(keys[i%3])))
	}
	for _, w := range m.wins {
		total := 0
		w.known.Each(func(_ string, r *sample.Reservoir) { total += r.Len() })
		if total > 7 {
			t.Fatalf("aggregate sample %d exceeds budget 7", total)
		}
	}
}

// ---- load shedding (grouped, known path) ----

func TestGroupedShedNonHolisticStaysExact(t *testing.T) {
	// Shedding taints windows, but a non-holistic grouped operation is
	// answered exactly from the per-group Welford metadata regardless —
	// the contract survives shedding.
	cfg := mkCfg(agg.Func{Op: agg.Mean}, 6)
	cfg.KeyBy = tuple.FieldString(1)
	cfg.KnownGroups = 3
	m, _ := NewGroupedManager(cfg)
	m.SetShedding(true)
	r := rand.New(rand.NewSource(5))
	sums := map[string]float64{}
	counts := map[string]float64{}
	keys := []string{"a", "b", "c"}
	for i := 0; i < 600; i++ {
		k := keys[i%3]
		v := math.Abs(r.NormFloat64()) * 1e6
		sums[k] += v
		counts[k]++
		m.OnTuple(tuple.New(int64(i)%100, tuple.Float(v), tuple.String_(k)))
	}
	rs, err := m.OnWatermark(100)
	if err != nil {
		t.Fatal(err)
	}
	res := rs[0]
	if res.Mode != ModeIncremental || !res.ContractMet() {
		t.Fatalf("Mode = %v, want incremental (exact from metadata)", res.Mode)
	}
	for k, want := range sums {
		want /= counts[k]
		if math.Abs(res.Groups[k]-want) > 1e-6*want {
			t.Errorf("group %q = %v, want exact %v", k, res.Groups[k], want)
		}
	}
}

func TestGroupedShedHolisticIsModeShed(t *testing.T) {
	cfg := mkCfg(agg.Median(), 6)
	cfg.KeyBy = tuple.FieldString(1)
	cfg.KnownGroups = 3
	reg := metrics.NewRegistry()
	cfg.Metrics = reg.Worker("w")
	m, err := NewGroupedManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.SetShedding(true)
	r := rand.New(rand.NewSource(6))
	keys := []string{"a", "b", "c"}
	for i := 0; i < 600; i++ {
		m.OnTuple(tuple.New(int64(i)%100, tuple.Float(r.Float64()*1000), tuple.String_(keys[i%3])))
	}
	rs, err := m.OnWatermark(100)
	if err != nil {
		t.Fatal(err)
	}
	res := rs[0]
	if res.Mode != ModeShed || res.ContractMet() {
		t.Fatalf("Mode = %v, want shed (holistic, bound failed, archive gone)", res.Mode)
	}
	if len(res.Groups) != 3 {
		t.Fatalf("%d groups in shed answer, want 3", len(res.Groups))
	}
	if res.FetchedFromStore {
		t.Error("a shed window must not touch S")
	}
	if got := cfg.Metrics.WindowsShed.Load(); got != 1 {
		t.Errorf("WindowsShed = %d, want 1", got)
	}
}

// ---- snapshot/restore at the budget floor (satellite: versioned check) ----

func TestScalarSnapshotRestoreAtBudgetFloor(t *testing.T) {
	cfg := mkCfg(agg.Func{Op: agg.Mean}, 50)
	cfg.DisableIncremental = true
	m, _ := NewScalarManager(cfg)
	for i := 0; i < 120; i++ {
		m.OnTuple(tuple.New(int64(i), tuple.Float(float64(i))))
	}
	m.SetBudget(0) // the controller drove the budget to the floor
	blob, err := m.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}

	cfg2 := cfg
	cfg2.Store = cfg.Store // same S: panes must be readable after restore
	cfg2.Cell = control.NewCell(50)
	m2, _ := NewScalarManager(cfg2)
	if err := m2.RestoreState(blob); err != nil {
		t.Fatalf("restore at budget floor: %v (the old check treated curBudget == 0 as corrupt)", err)
	}
	if m2.curBudget != 0 {
		t.Fatalf("restored budget %d, want 0", m2.curBudget)
	}
	if got := cfg2.Cell.Budget(); got != 0 {
		t.Fatalf("restore must re-publish the budget to the controller cell, got %d", got)
	}
	// The restored manager keeps producing: exact results from S.
	for i := 120; i < 200; i++ {
		m2.OnTuple(tuple.New(int64(i), tuple.Float(float64(i))))
	}
	rs, err := m2.OnWatermark(200)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("%d results after recovery, want 2", len(rs))
	}
	for _, r := range rs {
		if r.Mode != ModeExact {
			t.Fatalf("window %d Mode = %v, want exact at budget 0", r.WindowID, r.Mode)
		}
	}
}

func TestScalarSnapshotCarriesShedState(t *testing.T) {
	cfg := mkCfg(agg.Func{Op: agg.Mean}, 5)
	cfg.DisableIncremental = true
	m, _ := NewScalarManager(cfg)
	m.SetShedding(true)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		m.OnTuple(tuple.New(int64(i)%100, tuple.Float(math.Abs(r.NormFloat64())*1e6)))
	}
	blob, err := m.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	m2, _ := NewScalarManager(cfg2)
	if err := m2.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	if !m2.shed || m2.sheds != 200 {
		t.Fatalf("restored shed=%v sheds=%d, want true/200", m2.shed, m2.sheds)
	}
	rs, err := m2.OnWatermark(100)
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Mode != ModeShed {
		t.Fatalf("restored tainted window Mode = %v, want shed", rs[0].Mode)
	}
}

// v1ScalarBlob replicates the legacy (pre-adaptive) scalar snapshot
// writer byte for byte, so the reader's backward compatibility — and
// its stricter v1 invariants — stay pinned by tests.
func v1ScalarBlob(t *testing.T, m *ScalarManager, budget uint64) []byte {
	t.Helper()
	dst := []byte{snapScalar}
	dst = tuple.AppendBool(dst, m.started)
	dst = tuple.AppendBool(dst, m.fired)
	dst = tuple.AppendI64(dst, int64(m.nextFire))
	dst = tuple.AppendI64(dst, m.seq)
	dst = tuple.AppendI64(dst, m.maxPos)
	dst = tuple.AppendI64(dst, m.late)
	dst = tuple.AppendUvar(dst, budget)
	var err error
	if dst, err = m.arc.appendState(dst); err != nil {
		t.Fatal(err)
	}
	ids := sortedWinIDs(len(m.wins), func(yield func(window.ID)) {
		for id := range m.wins {
			yield(id)
		}
	})
	dst = tuple.AppendUvar(dst, uint64(len(ids)))
	for _, id := range ids {
		w := m.wins[id]
		dst = tuple.AppendI64(dst, int64(id))
		dst = tuple.AppendI64(dst, w.first)
		dst = w.res.AppendTo(dst)
		dst = w.all.AppendTo(dst)
		dst = tuple.AppendBool(dst, w.inc != nil)
		if w.inc != nil {
			dst = w.inc.AppendTo(dst)
		}
	}
	return dst
}

func TestScalarV1SnapshotCompatibility(t *testing.T) {
	cfg := mkCfg(agg.Func{Op: agg.Mean}, 50)
	cfg.DisableIncremental = true
	m, _ := NewScalarManager(cfg)
	for i := 0; i < 80; i++ {
		m.OnTuple(tuple.New(int64(i), tuple.Float(float64(i))))
	}

	// A well-formed v1 blob restores.
	m2, _ := NewScalarManager(cfg)
	if err := m2.RestoreState(v1ScalarBlob(t, m, 50)); err != nil {
		t.Fatalf("v1 restore: %v", err)
	}
	if m2.curBudget != 50 || m2.shed || m2.sheds != 0 {
		t.Fatalf("v1 restore state: budget=%d shed=%v sheds=%d", m2.curBudget, m2.shed, m2.sheds)
	}

	// v1's invariant stays enforced: a zero budget in a v1 blob can
	// only be corruption (the budget never moved in that format).
	m3, _ := NewScalarManager(cfg)
	if err := m3.RestoreState(v1ScalarBlob(t, m, 0)); err == nil {
		t.Fatal("v1 blob with zero budget must stay corrupt")
	}
}
