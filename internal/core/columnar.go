package core

import (
	"math"

	"spear/internal/agg"
	"spear/internal/col"
	"spear/internal/sample"
	"spear/internal/window"
)

// This file holds the columnar ingest kernels — the ColumnManager
// implementations for the scalar and grouped managers. Both follow the
// same shape:
//
//  1. Eligibility gate, once per batch: the columnar lane applies only
//     to time-domain specs (count-domain windows fire on arrival, which
//     needs the per-tuple interleave), requires a dense row-aligned
//     value column, and verifies the declared field projections against
//     the first row (the tripwire: Config.Value must equal
//     FieldFloat(Columnar.ValueField) bit-for-bit). Anything else falls
//     back to OnTupleBatch over the borrowed rows — correctness never
//     depends on the declaration.
//  2. window.Spec.EachRun segments the batch's positions into runs
//     sharing one window assignment, so the assignment arithmetic,
//     lateness check, and window map lookups are paid per run, not per
//     tuple (a tumbling window sees one run per batch in steady state).
//  3. Per (run, window): the samplers consume the raw value slice —
//     Reservoir.AddSlice (Algorithm L skip-ahead), Welford.AddSlice,
//     Incremental.AddSlice — all bit-identical by contract to a
//     per-element Add loop, same PRNG draws included. Each window sees
//     its tuples in arrival order exactly as the row path does, so
//     every downstream accuracy decision (ε̂_w, accelerate-vs-exact
//     Mode) is unchanged.
//  4. Archiving and telemetry are amortized per run / per batch, which
//     OnTupleBatch already does per batch.
//
// Window state, archive state, and the seq/maxPos scalars are mutually
// independent during time-domain ingest (nothing fires before the
// watermark), so hoisting the maxPos fold to the batch head and
// deferring the archive appends to the run tail reorders no observable
// effect.

// OnColumnBatch implements ColumnManager for the scalar manager: the
// per-tuple work of Alg. 1 as tight loops over the raw value column.
func (m *ScalarManager) OnColumnBatch(cb *col.ColumnBatch) ([]Result, error) {
	n := cb.Len()
	if n == 0 {
		return nil, nil
	}
	m.syncControl()
	rows := cb.Rows()
	if !m.cfg.Columnar.Enabled || m.cfg.Spec.Domain == window.CountDomain {
		return m.OnTupleBatch(rows)
	}
	vals := cb.Floats(m.cfg.Columnar.ValueField)
	if vals == nil ||
		math.Float64bits(vals[0]) != math.Float64bits(m.cfg.Value(rows[0])) {
		return m.OnTupleBatch(rows)
	}
	ts := cb.Ts()

	// seq/maxPos fold, hoisted: ingest never reads them (only the
	// watermark-time fire does), so batch-head order is equivalent.
	if m.seq == 0 {
		m.maxPos = ts[0]
	}
	m.seq += int64(n)
	for _, p := range ts {
		if p > m.maxPos {
			m.maxPos = p
		}
	}

	late := 0
	var archiveErr error
	m.cfg.Spec.EachRun(ts, func(i0, i1 int, lo, hi window.ID) {
		if archiveErr != nil {
			return
		}
		if !m.started {
			m.started = true
			m.nextFire = lo
		} else if lo < m.nextFire && !m.fired {
			// Pre-first-fire anchor lowering, mirroring the row path
			// (see ScalarManager.ingest) so both stay bit-identical.
			m.nextFire = lo
		}
		if hi < m.nextFire {
			// Late run: dropped, not archived — exactly the per-tuple
			// late path.
			late += i1 - i0
			return
		}
		if lo < m.nextFire {
			lo = m.nextFire
		}
		run := vals[i0:i1]
		for id := lo; id <= hi; id++ {
			w := m.lastWin
			if w == nil || id != m.lastID {
				var ok bool
				w, ok = m.wins[id]
				if !ok {
					w = &scalarWin{first: ts[i0]}
					if m.curBudget > 0 {
						w.res = sample.NewReservoir(m.curBudget, sample.DeriveSeed(m.cfg.Seed, int64(id)), sample.AlgoL)
					}
					if m.useIncremental() {
						w.inc, _ = agg.NewIncremental(m.cfg.Agg)
					}
					m.wins[id] = w
				}
				m.lastID, m.lastWin = id, w
			}
			if w.res != nil {
				w.res.AddSlice(run)
			}
			w.all.AddSlice(run)
			if w.inc != nil {
				w.inc.AddSlice(run)
			}
			if m.shed {
				w.tainted = true
			}
		}
		if m.shed {
			// Shedding skips the archive appends for the whole run —
			// mirroring the per-tuple path's skip of arc.add.
			m.sheds += int64(i1 - i0)
			if m.cfg.Metrics != nil {
				m.cfg.Metrics.TuplesShed.Add(int64(i1 - i0))
			}
			return
		}
		for i := i0; i < i1; i++ {
			if err := m.arc.add(rows[i]); err != nil {
				archiveErr = err
				return
			}
		}
	})
	m.late += int64(late)
	if m.cfg.Metrics != nil {
		if late > 0 {
			m.cfg.Metrics.LateDropped.Add(int64(late))
		}
		if n > late {
			m.cfg.Metrics.TuplesIn.Add(int64(n - late))
			m.cfg.Metrics.MemBytes.Set(int64(m.BudgetMemUsage()))
		}
	}
	return nil, archiveErr
}

// OnColumnBatch implements ColumnManager for the grouped manager's
// arrival-sampled path (known groups): per-group frequency/variance and
// stratified reservoirs fed from the raw value column and the
// dictionary-coded key column — interned dictionary strings key the
// group maps with zero per-row allocation. The buffered path (unknown
// groups) and count-domain specs fall back to the row path.
func (m *GroupedManager) OnColumnBatch(cb *col.ColumnBatch) ([]Result, error) {
	n := cb.Len()
	if n == 0 {
		return nil, nil
	}
	m.syncControl()
	rows := cb.Rows()
	if !m.cfg.Columnar.Enabled || m.arc == nil || m.cfg.Spec.Domain == window.CountDomain {
		return m.OnTupleBatch(rows)
	}
	vals := cb.Floats(m.cfg.Columnar.ValueField)
	codes, dict, ok := cb.Strings(m.cfg.Columnar.KeyField)
	if vals == nil || !ok ||
		math.Float64bits(vals[0]) != math.Float64bits(m.cfg.Value(rows[0])) ||
		dict[codes[0]] != m.cfg.KeyBy(rows[0]) {
		return m.OnTupleBatch(rows)
	}
	ts := cb.Ts()

	if m.seq == 0 {
		m.maxPos = ts[0]
	}
	m.seq += int64(n)
	for _, p := range ts {
		if p > m.maxPos {
			m.maxPos = p
		}
	}

	var archiveErr error
	m.cfg.Spec.EachRun(ts, func(i0, i1 int, lo, hi window.ID) {
		if archiveErr != nil {
			return
		}
		if !m.started {
			m.started = true
			m.nextFire = lo
		} else if lo < m.nextFire && !m.fired {
			// Pre-first-fire anchor lowering, mirroring the row path
			// (see GroupedManager.ingest) so both stay bit-identical.
			m.nextFire = lo
		}
		if hi >= m.nextFire {
			if lo < m.nextFire {
				lo = m.nextFire
			}
			for id := lo; id <= hi; id++ {
				w, ok := m.wins[id]
				if !ok {
					w = &groupedWin{gs: sample.NewGroupStats()}
					if pg := m.perGroupCap(); pg > 0 {
						w.known = sample.NewGroupReservoirs(
							pg, sample.DeriveSeed(m.cfg.Seed, int64(id)), sample.AlgoL)
					}
					m.wins[id] = w
				}
				if w.known != nil {
					for i := i0; i < i1; i++ {
						w.gs.Add(dict[codes[i]], vals[i])
						w.known.Add(dict[codes[i]], vals[i])
					}
				} else {
					for i := i0; i < i1; i++ {
						w.gs.Add(dict[codes[i]], vals[i])
					}
				}
				if m.shed {
					w.tainted = true
				}
			}
		} else {
			m.late += int64(i1 - i0)
			if m.cfg.Metrics != nil {
				m.cfg.Metrics.LateDropped.Add(int64(i1 - i0))
			}
		}
		// The grouped archive keeps late tuples too (they are dropped
		// from results, not from S) — same as the per-tuple path.
		if m.shed {
			m.sheds += int64(i1 - i0)
			if m.cfg.Metrics != nil {
				m.cfg.Metrics.TuplesShed.Add(int64(i1 - i0))
			}
			return
		}
		for i := i0; i < i1; i++ {
			if err := m.arc.add(rows[i]); err != nil {
				archiveErr = err
				return
			}
		}
	})
	if m.cfg.Metrics != nil {
		m.cfg.Metrics.TuplesIn.Add(int64(n))
		m.cfg.Metrics.MemBytes.Set(int64(m.BudgetMemUsage()))
	}
	return nil, archiveErr
}

// ensure interface compliance.
var (
	_ ColumnManager = (*ScalarManager)(nil)
	_ ColumnManager = (*GroupedManager)(nil)
)
