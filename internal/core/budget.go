package core

// BudgetPolicy adapts the per-window memory budget b online, between
// windows — the capability the paper defers to future versions ("Future
// versions of SPEAr will be able to accommodate dynamic methods for
// online budget estimation", §4). After every produced window the
// manager asks the policy for the budget to give the next window.
//
// Policies see only the window outcome (mode and estimated error), so
// they cannot peek at data the budget did not already pay for.
type BudgetPolicy interface {
	// Next returns the budget for subsequently created windows, given
	// the budget in force and the just-produced result. Returns must
	// be positive; the manager clamps nonsensical values to 1.
	Next(current int, last Result) int
}

// AIMDBudget is a simple additive-increase/multiplicative-decrease-
// style controller: an estimation failure (the window fell back to
// exact processing) multiplies the budget by Grow; an accelerated
// window whose estimated error sits comfortably below the target ε
// shrinks it by Shrink. The budget stays within [Min, Max].
//
// The controller converges to the smallest budget that keeps windows
// accelerating on the current data, so operators do not have to run the
// paper's offline analysis ("we analyzed their data characteristics
// offline, and then hard-code those values") to pick b.
type AIMDBudget struct {
	// Min and Max bound the budget. Min must be ≥ 1 and ≤ Max.
	Min, Max int
	// Grow multiplies the budget after a fallback; values ≤ 1 are
	// treated as the default 2.0.
	Grow float64
	// Shrink multiplies the budget after a comfortable acceleration;
	// values outside (0, 1) are treated as the default 0.95.
	Shrink float64
	// Slack is the fraction of ε under which an accelerated window
	// counts as comfortable (default 0.5: ε̂ < ε/2 allows shrinking).
	Slack float64
	// Epsilon is the target error the manager runs with; the manager
	// fills it in if zero.
	Epsilon float64
}

// Next implements BudgetPolicy.
func (p *AIMDBudget) Next(current int, last Result) int {
	grow := p.Grow
	if grow <= 1 {
		grow = 2.0
	}
	shrink := p.Shrink
	if !(shrink > 0 && shrink < 1) {
		shrink = 0.95
	}
	slack := p.Slack
	if !(slack > 0 && slack < 1) {
		slack = 0.5
	}
	next := current
	switch {
	case last.Mode == ModeExact:
		// The budget was insufficient: grow aggressively so the next
		// windows stop paying the full-processing penalty.
		next = int(float64(current)*grow) + 1
	case last.Mode == ModeSampled && p.Epsilon > 0 && last.EstError < p.Epsilon*slack:
		// Plenty of headroom: reclaim memory slowly.
		next = int(float64(current) * shrink)
	}
	if p.Min > 0 && next < p.Min {
		next = p.Min
	}
	if p.Max > 0 && next > p.Max {
		next = p.Max
	}
	if next < 1 {
		next = 1
	}
	return next
}
