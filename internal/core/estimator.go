package core

import (
	"math"
	"sort"

	"spear/internal/agg"
	"spear/internal/sample"
	"spear/internal/stats"
)

// ScalarState is the window state a scalar accuracy estimator sees at
// watermark arrival: the reservoir sample, the window size, and the
// incrementally maintained moments.
type ScalarState struct {
	// Sample is the simple random sample held in the budget. It must
	// not be modified (it aliases the reservoir).
	Sample []float64
	// N is the window size |S_w|.
	N int64
	// Stats are the incrementally maintained moments of the sample.
	Stats *stats.Welford
	// Epsilon and Confidence are the user's (ε, α).
	Epsilon, Confidence float64
	// Agg is the operation being estimated; meaningless when Custom
	// is set.
	Agg agg.Func
	// Custom is the user-defined operation being estimated, when the
	// query uses one. The built-in estimators refuse custom
	// operations (they cannot know the estimator's sampling
	// behavior); user estimators receive it for dispatching.
	Custom *agg.CustomFunc
}

// ScalarEstimator produces the estimated error ε̂_w for a scalar window.
// ok=false means the window cannot be accelerated at all (regardless of
// ε̂), forcing exact processing. This is the extension point for the
// paper's custom approximate operations.
type ScalarEstimator func(s ScalarState) (estErr float64, ok bool)

// GroupedState is the per-window state a grouped estimator sees.
type GroupedState struct {
	// Groups holds each group's frequency and value variance,
	// accumulated at tuple arrival.
	Groups *sample.GroupStats
	// Alloc is the congressional sample allocation for this window.
	Alloc map[string]int
	// N is the window size.
	N int64
	// Epsilon and Confidence are the user's (ε, α).
	Epsilon, Confidence float64
	// Agg is the per-group operation.
	Agg agg.Func
}

// GroupedEstimator produces the aggregated (L1) error estimate for a
// grouped window.
type GroupedEstimator func(g GroupedState) (estErr float64, ok bool)

// defaultScalarEstimator picks the built-in estimator for f's class.
func defaultScalarEstimator(f agg.Func) ScalarEstimator {
	if f.Holistic() {
		return QuantileEstimator
	}
	return MeanLikeEstimator
}

// MeanLikeEstimator is the default estimator for distributive and
// algebraic scalar operations. It builds the finite-population-corrected
// normal confidence interval of §4.2 and reports its half-width relative
// to the estimate.
func MeanLikeEstimator(s ScalarState) (float64, bool) {
	if s.Custom != nil {
		return math.Inf(1), false // no generic bound for custom ops
	}
	n := int64(len(s.Sample))
	if n == 0 {
		return math.Inf(1), false
	}
	if n >= s.N {
		return 0, true // the sample is the whole window
	}
	switch s.Agg.Op {
	case agg.Count:
		// The window size is tracked exactly at tuple arrival.
		return 0, true
	case agg.Mean, agg.Sum:
		// Sum = N·mean shares the mean's relative error; small
		// samples use Student's t (stats.MeanCIAuto), larger ones
		// the paper's normal deviate.
		est := s.Stats.Mean()
		iv := stats.MeanCIAuto(est, s.Stats.StdDev(), n, s.N, s.Confidence)
		return stats.RelativeHalfWidth(est, iv), true
	case agg.Variance, agg.StdDev:
		// Var(s²) ≈ 2σ⁴/(n−1) under normality, so the relative CI
		// half-width of the variance is z·√(2/(n−1)); the stddev's
		// is half that (delta method).
		if n < 2 {
			return math.Inf(1), false
		}
		z := stats.ZForConfidence(s.Confidence)
		rel := z * math.Sqrt(2/float64(n-1))
		if s.Agg.Op == agg.StdDev {
			rel /= 2
		}
		return rel, true
	case agg.Min, agg.Max:
		// Sample extremes carry no distribution-free error bound; a
		// window can only be "accelerated" when fully sampled
		// (handled above) or maintained incrementally.
		return math.Inf(1), false
	default:
		return math.Inf(1), false
	}
}

// QuantileEstimator is the default estimator for holistic quantile
// operations, following the paper's adoption of Manku et al.: accuracy
// is established "by comparing the allocated budget b for a window with
// the expected budget". The sample admits an (ε, δ)-approximate quantile
// iff its size reaches the Hoeffding bound; the reported ε̂ is the rank
// error achievable at the actual sample size.
func QuantileEstimator(s ScalarState) (float64, bool) {
	if s.Custom != nil {
		return math.Inf(1), false
	}
	n := int64(len(s.Sample))
	if n == 0 {
		return math.Inf(1), false
	}
	if n >= s.N {
		return 0, true
	}
	return stats.QuantileRankError(n, s.Confidence), true
}

// TrimmedMeanEstimator returns an accuracy estimator for the
// agg.TrimmedMean(frac) custom operation: it trims the sample exactly
// the way the aggregate does and builds the finite-population mean
// confidence interval over the surviving values. It is both a usable
// estimator and the repository's worked example of the paper's
// custom-operation API.
func TrimmedMeanEstimator(frac float64) ScalarEstimator {
	if !(frac >= 0 && frac < 0.5) {
		panic("core: trim fraction must be in [0, 0.5)")
	}
	return func(s ScalarState) (float64, bool) {
		if len(s.Sample) < 30 {
			return math.Inf(1), false // below CLT territory
		}
		lo := stats.PercentileOf(s.Sample, frac)
		hi := stats.PercentileOf(s.Sample, 1-frac)
		var w stats.Welford
		for _, v := range s.Sample {
			if v >= lo && v <= hi {
				w.Add(v)
			}
		}
		if w.Count() < 2 {
			return math.Inf(1), false
		}
		est := w.Mean()
		// The trimmed stratum of the window holds ≈(1−2·frac)·N values.
		nTrim := int64(float64(s.N) * (1 - 2*frac))
		iv := stats.MeanCIAuto(est, w.StdDev(), w.Count(), nTrim, s.Confidence)
		return stats.RelativeHalfWidth(est, iv), true
	}
}

// defaultGroupedEstimator picks the built-in estimator for f's class.
func defaultGroupedEstimator(f agg.Func) GroupedEstimator {
	return func(g GroupedState) (float64, bool) {
		return groupedL1Error(g, f)
	}
}

// DefaultScalarEstimate runs the built-in scalar estimator for the
// state's aggregate. Custom estimators can wrap it to observe or adjust
// the engine's decisions.
func DefaultScalarEstimate(s ScalarState) (float64, bool) {
	return defaultScalarEstimator(s.Agg)(s)
}

// DefaultGroupedEstimate runs the built-in grouped (L1) estimator for
// the state's aggregate. Custom estimators can wrap it to observe or
// adjust the engine's decisions.
func DefaultGroupedEstimate(g GroupedState) (float64, bool) {
	return groupedL1Error(g, g.Agg)
}

// groupedL1Error estimates each group's error from its allocated sample
// size, then aggregates with the L1 metric of Acharya et al. (§4.2:
// "SPEAr calculates the error for each group e_g and then combines all
// e_g values"): the mean of per-group error estimates. A window is
// non-accelerable when any group would go unrepresented.
func groupedL1Error(g GroupedState, f agg.Func) (float64, bool) {
	if g.Groups.Len() == 0 {
		return math.Inf(1), false
	}
	if len(g.Alloc) < g.Groups.Len() {
		// Some group got no sample slots: R̂_w would miss it,
		// violating |R̂_w| = |R_w|.
		return math.Inf(1), false
	}
	// Sorted group order: the L1 combination is a float sum, and map
	// iteration order must not leak into ε̂ — two managers fed the same
	// stream must report bit-identical estimates (cf. CongressAllocate,
	// which sorts for the same reason).
	keys := make([]string, 0, g.Groups.Len())
	g.Groups.Each(func(key string, _ *stats.Welford) { keys = append(keys, key) })
	sort.Strings(keys)
	var sum float64
	groups := 0
	okAll := true
	for _, key := range keys {
		w := g.Groups.Get(key)
		nG := int64(g.Alloc[key])
		NG := w.Count()
		if nG <= 0 {
			okAll = false
			break
		}
		var eG float64
		if nG >= NG {
			eG = 0 // stratum fully sampled
		} else {
			switch {
			case f.Holistic():
				eG = stats.QuantileRankError(nG, g.Confidence)
			case f.Op == agg.Count:
				eG = 0 // frequencies are exact
			default:
				est := w.Mean()
				iv := stats.MeanCIAuto(est, w.StdDev(), nG, NG, g.Confidence)
				eG = stats.RelativeHalfWidth(est, iv)
			}
		}
		sum += eG
		groups++
	}
	if !okAll || groups == 0 {
		return math.Inf(1), false
	}
	return sum / float64(groups), true
}
