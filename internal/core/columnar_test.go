package core

import (
	"math"
	"math/rand"
	"testing"

	"spear/internal/agg"
	"spear/internal/col"
	"spear/internal/tuple"
	"spear/internal/window"
)

// This file pins the ColumnManager contract at the manager level: for
// every configuration the kernels claim to handle — and every one they
// must fall back from — OnColumnBatch has to reproduce OnTupleBatch
// bit-for-bit: window values, sample sizes, error estimates, AND the
// accelerate/exact Mode decisions.

// play feeds a script of steps ([]tuple.Tuple batches and int64
// watermarks) through m, via the columnar lane or the row lane, and
// returns the concatenated results.
func play(t *testing.T, m Manager, columnar bool, steps []any) []Result {
	t.Helper()
	var out []Result
	var cb *col.ColumnBatch
	if columnar {
		cb = col.Get()
		defer col.Put(cb)
	}
	for _, s := range steps {
		var rs []Result
		var err error
		switch v := s.(type) {
		case []tuple.Tuple:
			if columnar {
				cb.SetRows(v)
				rs, err = m.(ColumnManager).OnColumnBatch(cb)
			} else {
				rs, err = m.(BatchManager).OnTupleBatch(v)
			}
		case int64:
			rs, err = m.OnWatermark(v)
		default:
			t.Fatalf("bad step type %T", s)
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, rs...)
	}
	return out
}

// batches splits rows into batch-sized steps.
func batches(rows []tuple.Tuple, size int) []any {
	var out []any
	for i := 0; i < len(rows); i += size {
		end := i + size
		if end > len(rows) {
			end = len(rows)
		}
		out = append(out, rows[i:end])
	}
	return out
}

// sameResultSets asserts bit-exact equality of two result streams.
func sameResultSets(t *testing.T, row, col []Result) {
	t.Helper()
	if len(row) != len(col) {
		t.Fatalf("result count: row=%d columnar=%d", len(row), len(col))
	}
	for i := range row {
		a, b := row[i], col[i]
		if a.WindowID != b.WindowID || a.Start != b.Start || a.End != b.End {
			t.Fatalf("result %d: window [%d,%d)#%d vs [%d,%d)#%d",
				i, a.Start, a.End, a.WindowID, b.Start, b.End, b.WindowID)
		}
		if a.Mode != b.Mode {
			t.Fatalf("result %d window %d: Mode %v vs %v", i, a.WindowID, a.Mode, b.Mode)
		}
		if a.N != b.N || a.SampleN != b.SampleN {
			t.Fatalf("result %d window %d: n=%d/%d vs n=%d/%d",
				i, a.WindowID, a.SampleN, a.N, b.SampleN, b.N)
		}
		if a.FetchedFromStore != b.FetchedFromStore {
			t.Fatalf("result %d window %d: fetched %v vs %v",
				i, a.WindowID, a.FetchedFromStore, b.FetchedFromStore)
		}
		if math.Float64bits(a.EstError) != math.Float64bits(b.EstError) {
			t.Fatalf("result %d window %d: ε̂ %v vs %v", i, a.WindowID, a.EstError, b.EstError)
		}
		if math.Float64bits(a.Scalar) != math.Float64bits(b.Scalar) {
			t.Fatalf("result %d window %d: scalar %v vs %v", i, a.WindowID, a.Scalar, b.Scalar)
		}
		if len(a.Groups) != len(b.Groups) {
			t.Fatalf("result %d window %d: %d groups vs %d", i, a.WindowID, len(a.Groups), len(b.Groups))
		}
		for g, av := range a.Groups {
			bv, ok := b.Groups[g]
			if !ok || math.Float64bits(av) != math.Float64bits(bv) {
				t.Fatalf("result %d window %d group %q: %v vs %v (present=%v)",
					i, a.WindowID, g, av, bv, ok)
			}
		}
	}
}

// modes tallies the Mode mix so tests can assert a case actually
// exercised both the accelerated and the exact path.
func modes(rs []Result) map[Mode]int {
	out := map[Mode]int{}
	for _, r := range rs {
		out[r.Mode]++
	}
	return out
}

func scalarRows(n int, gen func(i int) (int64, float64)) []tuple.Tuple {
	rows := make([]tuple.Tuple, n)
	for i := range rows {
		ts, v := gen(i)
		rows[i] = tuple.New(ts, tuple.Float(v))
	}
	return rows
}

func TestColumnarScalarIdentity(t *testing.T) {
	cases := []struct {
		name  string
		cfg   func() Config
		steps func() []any
		want  func(t *testing.T, rs []Result)
	}{
		{
			// Non-holistic scalar: every window resolves incrementally.
			name: "mean incremental",
			cfg:  func() Config { return mkCfg(agg.Func{Op: agg.Mean}, 50) },
			steps: func() []any {
				r := rand.New(rand.NewSource(7))
				rows := scalarRows(2000, func(i int) (int64, float64) {
					return int64(i), r.NormFloat64() * 100
				})
				steps := batches(rows[:1000], 64)
				steps = append(steps, int64(500))
				steps = append(steps, batches(rows[1000:], 64)...)
				steps = append(steps, int64(2000))
				return steps
			},
			want: func(t *testing.T, rs []Result) {
				if m := modes(rs); m[ModeIncremental] != len(rs) || len(rs) == 0 {
					t.Fatalf("mode mix %v, want all incremental", m)
				}
			},
		},
		{
			// Holistic median under a budget below the Hoeffding bound
			// for ε=0.10: windows smaller than the budget are fully
			// sampled (ε̂=0 → sampled), larger ones fail the accuracy
			// check (exact, fetched from the archive). The Mode decision
			// itself must match.
			name: "median sampled and exact",
			cfg:  func() Config { return mkCfg(agg.Median(), 60) },
			steps: func() []any {
				r := rand.New(rand.NewSource(11))
				var rows []tuple.Tuple
				for w := 0; w < 10; w++ {
					n := 40 // fits the budget → fully sampled
					if w%2 == 1 {
						n = 400 // exceeds it → exact fallback
					}
					for i := 0; i < n; i++ {
						rows = append(rows, tuple.New(
							int64(w*100)+int64(i)%100,
							tuple.Float(r.NormFloat64()*100)))
					}
				}
				steps := batches(rows, 64)
				steps = append(steps, int64(1<<40))
				return steps
			},
			want: func(t *testing.T, rs []Result) {
				m := modes(rs)
				if m[ModeSampled] == 0 || m[ModeExact] == 0 {
					t.Fatalf("mode mix %v, want both sampled and exact", m)
				}
			},
		},
		{
			// §5.5 configuration: mean forced through the
			// sample-and-estimate path.
			name: "mean no incremental",
			cfg: func() Config {
				c := mkCfg(agg.Func{Op: agg.Mean}, 80)
				c.DisableIncremental = true
				return c
			},
			steps: func() []any {
				r := rand.New(rand.NewSource(13))
				rows := scalarRows(3000, func(i int) (int64, float64) {
					v := math.Abs(r.NormFloat64()) * math.Pow(10, float64(r.Intn(6)))
					return int64(i / 3), v
				})
				steps := batches(rows, 64)
				steps = append(steps, int64(1<<40))
				return steps
			},
			want: func(t *testing.T, rs []Result) {
				m := modes(rs)
				if m[ModeIncremental] != 0 {
					t.Fatalf("mode mix %v, incremental should be disabled", m)
				}
			},
		},
		{
			// Sliding windows: every tuple lands in four windows, and a
			// run can straddle an assignment change mid-slide.
			name: "sliding range 4x slide",
			cfg: func() Config {
				c := mkCfg(agg.Func{Op: agg.Mean}, 50)
				c.Spec = window.Spec{Domain: window.TimeDomain, Range: 400, Slide: 100}
				return c
			},
			steps: func() []any {
				r := rand.New(rand.NewSource(17))
				rows := scalarRows(1500, func(i int) (int64, float64) {
					return int64(i), r.Float64() * 10
				})
				steps := batches(rows, 64)
				steps = append(steps, int64(800))
				steps = append(steps, int64(1<<40))
				return steps
			},
			want: func(t *testing.T, rs []Result) {
				if len(rs) == 0 {
					t.Fatal("no results")
				}
			},
		},
		{
			// Late tuples: whole-late batches, and batches mixing late
			// runs with on-time runs, must be dropped identically.
			name: "late tuples",
			cfg:  func() Config { return mkCfg(agg.Func{Op: agg.Mean}, 20) },
			steps: func() []any {
				on := scalarRows(200, func(i int) (int64, float64) { return int64(i), float64(i) })
				lateOnly := scalarRows(30, func(i int) (int64, float64) { return int64(i % 90), 1e9 })
				mixed := scalarRows(40, func(i int) (int64, float64) {
					if i%3 == 0 {
						return int64(i), -1 // late
					}
					return int64(200 + i), float64(i)
				})
				return []any{
					on, int64(200),
					lateOnly, mixed,
					int64(1 << 40),
				}
			},
			want: func(t *testing.T, rs []Result) {
				if len(rs) == 0 {
					t.Fatal("no results")
				}
			},
		},
		{
			// Batches the kernel must refuse: a mixed-kind value column
			// (ints scattered among floats overflow the column) makes
			// Floats return nil, so the kernel hands the rows to
			// OnTupleBatch unchanged, interleaved with eligible batches.
			name: "ineligible batches fall back",
			cfg:  func() Config { return mkCfg(agg.Func{Op: agg.Mean}, 50) },
			steps: func() []any {
				clean := scalarRows(300, func(i int) (int64, float64) { return int64(i), float64(i) })
				dirty := make([]tuple.Tuple, 64)
				for i := range dirty {
					if i%3 == 0 {
						dirty[i] = tuple.New(int64(300+i), tuple.Int(int64(i)))
					} else {
						dirty[i] = tuple.New(int64(300+i), tuple.Float(float64(i)))
					}
				}
				steps := batches(clean, 64)
				steps = append(steps, dirty)
				steps = append(steps, int64(1<<40))
				return steps
			},
			want: func(t *testing.T, rs []Result) {
				if len(rs) == 0 {
					t.Fatal("no results")
				}
			},
		},
		{
			// A uniformly-int value column is eligible: Floats widens it
			// into a scratch []float64 with the exact AsFloat bits.
			name: "int value column widens",
			cfg:  func() Config { return mkCfg(agg.Func{Op: agg.Mean}, 50) },
			steps: func() []any {
				rows := make([]tuple.Tuple, 500)
				for i := range rows {
					rows[i] = tuple.New(int64(i), tuple.Int(int64(i*7-1000)))
				}
				steps := batches(rows, 64)
				steps = append(steps, int64(1<<40))
				return steps
			},
			want: func(t *testing.T, rs []Result) {
				if len(rs) == 0 {
					t.Fatal("no results")
				}
			},
		},
		{
			// A declared value field that disagrees with the extractor
			// trips the first-row check; speed is lost, results are not.
			name: "wrong declaration falls back",
			cfg: func() Config {
				c := mkCfg(agg.Func{Op: agg.Mean}, 50)
				c.Columnar.ValueField = 1 // Value reads field 0
				return c
			},
			steps: func() []any {
				rows := make([]tuple.Tuple, 256)
				for i := range rows {
					rows[i] = tuple.New(int64(i), tuple.Float(float64(i)), tuple.Float(-1))
				}
				steps := batches(rows, 64)
				steps = append(steps, int64(1<<40))
				return steps
			},
			want: func(t *testing.T, rs []Result) {
				if len(rs) == 0 {
					t.Fatal("no results")
				}
			},
		},
		{
			// Count-domain windows complete at arrival; the kernel
			// declines them up front.
			name: "count domain falls back",
			cfg: func() Config {
				c := mkCfg(agg.Func{Op: agg.Mean}, 50)
				c.Spec = window.CountTumbling(100)
				return c
			},
			steps: func() []any {
				rows := scalarRows(350, func(i int) (int64, float64) { return int64(i), float64(i % 7) })
				return batches(rows, 64)
			},
			want: func(t *testing.T, rs []Result) {
				if len(rs) != 3 {
					t.Fatalf("%d count windows, want 3", len(rs))
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rowCfg, colCfg := tc.cfg(), tc.cfg()
			rowCfg.Columnar.Enabled = true // same config bits both sides
			colCfg.Columnar.Enabled = true
			rm, err := NewScalarManager(rowCfg)
			if err != nil {
				t.Fatal(err)
			}
			cm, err := NewScalarManager(colCfg)
			if err != nil {
				t.Fatal(err)
			}
			rowRes := play(t, rm, false, tc.steps())
			colRes := play(t, cm, true, tc.steps())
			sameResultSets(t, rowRes, colRes)
			if rm.LateDropped() != cm.LateDropped() {
				t.Fatalf("late dropped: row=%d columnar=%d", rm.LateDropped(), cm.LateDropped())
			}
			tc.want(t, rowRes)
		})
	}
}

func groupedRows(n int, groups []string, gen func(i int) (int64, float64)) []tuple.Tuple {
	rows := make([]tuple.Tuple, n)
	for i := range rows {
		ts, v := gen(i)
		rows[i] = tuple.New(ts, tuple.String_(groups[i%len(groups)]), tuple.Float(v))
	}
	return rows
}

func TestColumnarGroupedIdentity(t *testing.T) {
	mk := func(known int) Config {
		c := mkCfg(agg.Func{Op: agg.Mean}, 240)
		c.KeyBy = tuple.FieldString(0)
		c.Value = tuple.FieldFloat(1)
		c.KnownGroups = known
		c.DisableIncremental = true
		c.Columnar = ColumnarSpec{Enabled: true, ValueField: 1, KeyField: 0}
		return c
	}
	groups := []string{"alpha", "beta", "gamma", "delta"}

	cases := []struct {
		name  string
		known int
		steps func() []any
		want  func(t *testing.T, rs []Result)
	}{
		{
			// Known groups + time domain is the kernel's home turf:
			// arrival-time stratified sampling straight off the columns.
			name:  "known groups sampled and exact",
			known: len(groups),
			steps: func() []any {
				r := rand.New(rand.NewSource(23))
				rows := groupedRows(6000, groups, func(i int) (int64, float64) {
					// Calm windows (tight CI → sampled) alternate with
					// wild-magnitude ones (check fails → exact).
					v := 1000 + r.NormFloat64()
					if (i/600)%2 == 1 {
						v = math.Abs(r.NormFloat64()) * math.Pow(10, float64(r.Intn(8)))
					}
					return int64(i / 6), v
				})
				steps := batches(rows, 64)
				steps = append(steps, int64(500))
				steps = append(steps, int64(1<<40))
				return steps
			},
			want: func(t *testing.T, rs []Result) {
				m := modes(rs)
				if m[ModeSampled] == 0 || m[ModeExact] == 0 {
					t.Fatalf("mode mix %v, want both sampled and exact", m)
				}
			},
		},
		{
			// Grouped late tuples are dropped from results but still
			// archived; the kernel replicates both halves.
			name:  "known groups late tuples",
			known: len(groups),
			steps: func() []any {
				on := groupedRows(400, groups, func(i int) (int64, float64) {
					return int64(i / 2), float64(i)
				})
				late := groupedRows(60, groups, func(i int) (int64, float64) {
					return int64(i % 150), 1e6
				})
				return []any{on, int64(200), late, int64(1 << 40)}
			},
			want: func(t *testing.T, rs []Result) {
				if len(rs) == 0 {
					t.Fatal("no results")
				}
			},
		},
		{
			// Unknown groups buffer at the worker (no arrival-time
			// archive), which the kernel declines.
			name:  "unknown groups fall back",
			known: 0,
			steps: func() []any {
				r := rand.New(rand.NewSource(29))
				rows := groupedRows(2000, groups, func(i int) (int64, float64) {
					return int64(i / 4), r.Float64() * 50
				})
				steps := batches(rows, 64)
				steps = append(steps, int64(1<<40))
				return steps
			},
			want: func(t *testing.T, rs []Result) {
				if len(rs) == 0 {
					t.Fatal("no results")
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rm, err := NewGroupedManager(mk(tc.known))
			if err != nil {
				t.Fatal(err)
			}
			cm, err := NewGroupedManager(mk(tc.known))
			if err != nil {
				t.Fatal(err)
			}
			rowRes := play(t, rm, false, tc.steps())
			colRes := play(t, cm, true, tc.steps())
			sameResultSets(t, rowRes, colRes)
			tc.want(t, rowRes)
		})
	}
}

// TestColumnarKernelAllocs is the allocation-regression gate on the
// columnar hot path: in steady state (warm column buffers, warm archive
// chunk, existing window) a 64-tuple OnColumnBatch — including the
// SetRows conversion — must stay O(1) allocations per batch, far below
// one allocation per tuple.
func TestColumnarKernelAllocs(t *testing.T) {
	cfg := mkCfg(agg.Func{Op: agg.Mean}, 100)
	cfg.ArchiveChunk = 1 << 20 // keep chunk flushes out of the measurement
	cfg.Columnar = ColumnarSpec{Enabled: true, ValueField: 0}
	m, err := NewScalarManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]tuple.Tuple, 64)
	for i := range rows {
		rows[i] = tuple.New(10, tuple.Float(float64(i)))
	}
	cb := col.Get()
	defer col.Put(cb)
	for i := 0; i < 200; i++ { // warm buffers and archive chunk capacity
		cb.SetRows(rows)
		if _, err := m.OnColumnBatch(cb); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		cb.SetRows(rows)
		if _, err := m.OnColumnBatch(cb); err != nil {
			t.Fatal(err)
		}
	})
	if perTuple := avg / float64(len(rows)); perTuple > 0.25 {
		t.Fatalf("columnar ingest allocates %.2f per batch (%.3f/tuple), want < 0.25/tuple", avg, perTuple)
	}
}
