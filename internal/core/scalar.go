package core

import (
	"fmt"
	"math"
	"time"

	"spear/internal/agg"
	"spear/internal/sample"
	"spear/internal/stats"
	"spear/internal/tuple"
	"spear/internal/window"
)

// ScalarManager is the SPEAr window manager for scalar stateful
// operations (§4.1 "Scalar"). Instead of buffering the window, it keeps
// per active window a reservoir sample of the aggregated values bounded
// by the budget b, plus the window's incrementally maintained size and
// moments; every tuple is archived to secondary storage S for the exact
// fallback. At watermark arrival it runs the accuracy check of Alg. 2.
type ScalarManager struct {
	//lint:allow snapshotcover config handle; only telemetry under it mutates
	cfg Config
	est ScalarEstimator
	arc *archive

	wins map[window.ID]*scalarWin
	// lastID/lastWin memoize the most recent wins lookup: consecutive
	// tuples overwhelmingly hit the same window(s), so the per-tuple
	// map access in ingest collapses to a comparison. Invalidated
	// whenever wins entries are deleted or the map is replaced.
	// Not serialized: a memo cache is rebuilt on demand, and RestoreState
	// resets both halves (covered by the directive on each line).
	lastID    window.ID  //lint:allow snapshotcover memo cache; rebuilt on demand, reset by RestoreState
	lastWin   *scalarWin //lint:allow snapshotcover memo cache; rebuilt on demand, reset by RestoreState
	started   bool
	fired     bool // some window has actually closed; lateness is defined from here on
	nextFire  window.ID
	seq       int64
	maxPos    int64
	late      int64
	curBudget int
	shed      bool  // archive writes currently shed (controller escalation)
	sheds     int64 // tuples whose archive write was shed
	now       func() time.Time
}

type scalarWin struct {
	res   *sample.Reservoir
	all   stats.Welford // moments and count of every tuple in the window
	inc   *agg.Incremental
	first int64 // position of the first tuple (diagnostics)
	// tainted marks a window that lost at least one archive write to
	// load shedding: its exact fallback is gone, so a failed accuracy
	// check answers from the sample anyway (ModeShed).
	tainted bool
}

// NewScalarManager returns a manager for cfg. cfg.KeyBy must be nil.
func NewScalarManager(cfg Config) (*ScalarManager, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.KeyBy != nil {
		return nil, fmt.Errorf("core: ScalarManager given a grouped config; use NewGroupedManager")
	}
	est := cfg.ScalarEstimator
	if est == nil {
		est = defaultScalarEstimator(cfg.Agg)
	}
	if p, ok := cfg.Budget.(*AIMDBudget); ok && p.Epsilon == 0 {
		p.Epsilon = cfg.Epsilon
	}
	m := &ScalarManager{
		cfg:       cfg,
		est:       est,
		arc:       newArchive(cfg.Store, cfg.Key, cfg.Spec, cfg.ArchiveChunk, cfg.DeferStoreDeletes),
		wins:      make(map[window.ID]*scalarWin),
		curBudget: cfg.BudgetTuples,
		now:       cfg.clock(),
	}
	if cfg.Metrics != nil {
		cfg.Metrics.BudgetTuples.Set(int64(m.curBudget))
	}
	return m, nil
}

// syncControl pulls the controller cell's published budget and shedding
// state into the manager. Called at the top of every OnTuple/
// OnTupleBatch/OnColumnBatch — two atomic loads plus comparisons in the
// common no-change case; reservoir resizes happen only when the target
// actually moved, never inside a per-tuple loop.
func (m *ScalarManager) syncControl() {
	c := m.cfg.Cell
	if c == nil {
		return
	}
	if b := c.Budget(); b != m.curBudget {
		m.SetBudget(b)
	}
	// Shedding without a sample to answer from would produce nothing at
	// all; the manager refuses until the budget is positive again.
	m.shed = c.Shedding() && m.curBudget > 0
}

// SetBudget applies a new tuple budget immediately: live windows'
// reservoirs are resized in place (a seeded uniform down-sample on
// shrink, so every active sample stays a simple random sample of its
// window so far), and windows created from here on start at the new
// capacity. A non-positive budget disables sampling — live samples are
// dropped and affected windows can only answer exactly.
func (m *ScalarManager) SetBudget(b int) {
	if b < 0 {
		b = 0
	}
	if b == m.curBudget {
		return
	}
	m.curBudget = b
	for _, w := range m.wins {
		switch {
		case b == 0:
			w.res = nil
		case w.res != nil:
			w.res.Resize(b)
		}
		// A window that already lost its sample to a budget-0 phase
		// stays sample-less: admitting only the suffix of its stream
		// would not be a uniform sample.
	}
	if m.cfg.Metrics != nil {
		m.cfg.Metrics.BudgetTuples.Set(int64(b))
	}
}

// SetShedding toggles archive-write shedding directly (the controller
// path goes through the cell; this is the test/embedding seam).
// Ignored while the budget is zero — shedding requires a sample.
func (m *ScalarManager) SetShedding(on bool) { m.shed = on && m.curBudget > 0 }

func (m *ScalarManager) useIncremental() bool {
	return m.cfg.Custom == nil && m.cfg.Agg.Incremental() && !m.cfg.DisableIncremental
}

// evalSample evaluates the operation on a sample from a window of n.
func (m *ScalarManager) evalSample(sample []float64, n int64) float64 {
	if m.cfg.Custom != nil {
		return m.cfg.Custom.Compute(sample, n)
	}
	return m.cfg.Agg.Estimate(sample, n)
}

// evalExact evaluates the operation on the full window.
func (m *ScalarManager) evalExact(values []float64) float64 {
	if m.cfg.Custom != nil {
		return m.cfg.Custom.Compute(values, int64(len(values)))
	}
	return m.cfg.Agg.Compute(values)
}

// OnTuple implements Manager (Alg. 1): update the budget's sample and
// statistics, archive the tuple to S.
func (m *ScalarManager) OnTuple(t tuple.Tuple) ([]Result, error) {
	m.syncControl()
	rs, ingested, err := m.ingest(t)
	if err != nil {
		return rs, err
	}
	if ingested && m.cfg.Metrics != nil {
		m.cfg.Metrics.TuplesIn.Inc()
		m.cfg.Metrics.MemBytes.Set(int64(m.BudgetMemUsage()))
	}
	return rs, nil
}

// OnTupleBatch implements BatchManager: the per-tuple work of Alg. 1
// with the telemetry updates (counter increment, memory gauge refresh)
// amortized once per batch instead of once per tuple.
func (m *ScalarManager) OnTupleBatch(ts []tuple.Tuple) ([]Result, error) {
	m.syncControl()
	var out []Result
	ingested := 0
	for i := range ts {
		rs, ok, err := m.ingest(ts[i])
		if len(rs) > 0 {
			//lint:ignore hotloop results are per-window fires, not per-tuple; out stays nil on most batches and preallocating len(batch) would allocate every batch
			out = append(out, rs...)
		}
		if err != nil {
			return out, err
		}
		if ok {
			ingested++
		}
	}
	if ingested > 0 && m.cfg.Metrics != nil {
		m.cfg.Metrics.TuplesIn.Add(int64(ingested))
		m.cfg.Metrics.MemBytes.Set(int64(m.BudgetMemUsage()))
	}
	return out, nil
}

// ingest is the metrics-free per-tuple body shared by OnTuple and
// OnTupleBatch. ingested is false for late-dropped tuples (which count
// toward LateDropped, not TuplesIn).
func (m *ScalarManager) ingest(t tuple.Tuple) (rs []Result, ingested bool, err error) {
	pos := t.Ts
	if m.cfg.Spec.Domain == window.CountDomain {
		pos = m.seq
		t.Ts = pos
	}
	m.seq++
	if pos > m.maxPos || m.seq == 1 {
		m.maxPos = pos
	}

	lo, hi := m.cfg.Spec.Assign(pos)
	if !m.started {
		m.started = true
		m.nextFire = lo
	} else if lo < m.nextFire && !m.fired {
		// Before the first fire the anchor is only a guess from the
		// first tuple seen; with several upstream senders the merged
		// stream is unordered between watermark rounds, so an earlier
		// tuple must lower it rather than be misclassified as late.
		// Nothing below nextFire has closed until m.fired.
		m.nextFire = lo
	}
	if hi < m.nextFire {
		m.late++
		if m.cfg.Metrics != nil {
			m.cfg.Metrics.LateDropped.Inc()
		}
		return nil, false, nil
	}
	if lo < m.nextFire {
		lo = m.nextFire
	}

	v := m.cfg.Value(t)
	for id := lo; id <= hi; id++ {
		w := m.lastWin
		if w == nil || id != m.lastID {
			var ok bool
			w, ok = m.wins[id]
			if !ok {
				w = &scalarWin{first: pos}
				if m.curBudget > 0 {
					w.res = sample.NewReservoir(m.curBudget, sample.DeriveSeed(m.cfg.Seed, int64(id)), sample.AlgoL)
				}
				if m.useIncremental() {
					w.inc, _ = agg.NewIncremental(m.cfg.Agg)
				}
				m.wins[id] = w
			}
			m.lastID, m.lastWin = id, w
		}
		if w.res != nil {
			w.res.Add(v)
		}
		w.all.Add(v)
		if w.inc != nil {
			w.inc.Add(v)
		}
		if m.shed {
			w.tainted = true
		}
	}
	if m.shed {
		// Load shedding: skip the archive write — the per-tuple cost
		// that saturates under overload — and keep only the in-budget
		// state. N and the moments stay exact; the sample stays a
		// uniform s.r.s. of the whole window. What is lost is the
		// exact fallback for the windows this tuple spans.
		m.sheds++
		if m.cfg.Metrics != nil {
			m.cfg.Metrics.TuplesShed.Inc()
		}
	} else if err := m.arc.add(t); err != nil {
		return nil, true, err
	}

	if m.cfg.Spec.Domain == window.CountDomain {
		rs, err := m.fire(m.seq)
		return rs, true, err
	}
	return nil, true, nil
}

// OnWatermark implements Manager (Alg. 2).
func (m *ScalarManager) OnWatermark(wm int64) ([]Result, error) {
	if m.cfg.Spec.Domain == window.CountDomain {
		return nil, nil
	}
	return m.fire(wm)
}

func (m *ScalarManager) fire(wm int64) ([]Result, error) {
	if !m.started {
		return nil, nil
	}
	last := m.cfg.Spec.FirstCompleteBy(wm)
	// Clamp to windows that can hold data, so a +∞ closing watermark
	// fires a finite range.
	if _, hiData := m.cfg.Spec.Assign(m.maxPos); last > hiData {
		last = hiData
	}
	if last < m.nextFire {
		return nil, nil
	}
	m.fired = true // windows at and below last are closed for good
	var out []Result
	for id := m.nextFire; id <= last; id++ {
		r, err := m.produce(id)
		if err != nil {
			return nil, err
		}
		if r != nil {
			out = append(out, *r)
			// A per-window budget policy and the controller cell are
			// mutually exclusive owners of the budget; with a cell
			// attached the policy is ignored.
			if m.cfg.Budget != nil && m.cfg.Cell == nil {
				if next := m.cfg.Budget.Next(m.curBudget, *r); next >= 1 {
					m.curBudget = next
					if m.cfg.Metrics != nil {
						m.cfg.Metrics.BudgetTuples.Set(int64(next))
					}
				}
			}
		}
		delete(m.wins, id)
	}
	m.lastWin = nil // fired windows may include the memoized one
	m.nextFire = last + 1
	start, _ := m.cfg.Spec.Bounds(m.nextFire)
	if err := m.arc.evictBefore(start); err != nil {
		return nil, err
	}
	if m.cfg.Metrics != nil {
		m.cfg.Metrics.MemBytes.Set(int64(m.BudgetMemUsage()))
	}
	return out, nil
}

// produce runs Alg. 2 for one window: estimate ε̂_w from budget contents
// and either emit R̂_w or fall back to the whole window.
func (m *ScalarManager) produce(id window.ID) (*Result, error) {
	w, ok := m.wins[id]
	if !ok {
		return nil, nil // window received no tuples
	}
	t0 := m.now()
	startPos, endPos := m.cfg.Spec.Bounds(id)
	res := Result{
		WindowID:   id,
		Start:      startPos,
		End:        endPos,
		N:          w.all.Count(),
		Epsilon:    m.cfg.Epsilon,
		Confidence: m.cfg.Confidence,
		Budget:     m.curBudget,
	}

	switch {
	case w.inc != nil:
		// Non-holistic fast path: the result was maintained at tuple
		// arrival; finalizing is O(1) ("it only performs a division
		// to produce the mean per window").
		res.Mode = ModeIncremental
		res.Scalar = w.inc.Result()
		res.SampleN = int(w.all.Count())

	default:
		// Accuracy estimation from b's contents only.
		var smp []float64
		if w.res != nil {
			smp = w.res.Items()
		}
		var sw stats.Welford
		for _, v := range smp {
			sw.Add(v)
		}
		state := ScalarState{
			Sample:     smp,
			N:          w.all.Count(),
			Stats:      &sw,
			Epsilon:    m.cfg.Epsilon,
			Confidence: m.cfg.Confidence,
			Agg:        m.cfg.Agg,
			Custom:     m.cfg.Custom,
		}
		estErr, ok := m.est(state)
		switch {
		case ok && estErr <= m.cfg.Epsilon:
			res.Mode = ModeSampled
			res.EstError = estErr
			res.SampleN = len(smp)
			res.Scalar = m.evalSample(smp, state.N)
		case w.tainted:
			// The accuracy check failed but shedding dropped (part of)
			// this window's archive, so the exact fallback is gone.
			// Answer from the sample anyway and surface the realized
			// bound — possibly above ε — in the contract fields; the
			// Mode records that the ε guarantee was traded for
			// latency.
			if m.cfg.Metrics != nil {
				m.cfg.Metrics.EstimationFailures.Inc()
			}
			res.Mode = ModeShed
			res.EstError = estErr
			if !ok {
				res.EstError = math.Inf(1)
			}
			res.SampleN = len(smp)
			res.Scalar = m.evalSample(smp, state.N)
		default:
			// ε̂_w > ε: process the whole window from S (Alg. 2
			// line 5) — performance identical to normal execution
			// plus the failed check.
			if m.cfg.Metrics != nil {
				m.cfg.Metrics.EstimationFailures.Inc()
			}
			ts, err := m.arc.fetch(startPos, endPos)
			if err != nil {
				return nil, fmt.Errorf("core: exact fallback window %d: %w", id, err)
			}
			vals := make([]float64, len(ts))
			for i, t := range ts {
				vals[i] = m.cfg.Value(t)
			}
			res.Mode = ModeExact
			res.SampleN = len(vals)
			res.N = int64(len(vals))
			res.Scalar = m.evalExact(vals)
			res.FetchedFromStore = true
			if m.cfg.Metrics != nil {
				m.cfg.Metrics.TuplesProcessedFull.Add(int64(len(vals)))
			}
		}
	}

	if m.cfg.Metrics != nil {
		m.cfg.Metrics.ProcTime.ObserveDuration(m.now().Sub(t0))
		m.cfg.Metrics.WindowsTotal.Inc()
		if res.Mode.Accelerated() {
			m.cfg.Metrics.WindowsAccelerated.Inc()
		} else {
			m.cfg.Metrics.WindowsExact.Inc()
		}
		if res.Mode == ModeShed {
			m.cfg.Metrics.WindowsShed.Inc()
		}
		if res.FetchedFromStore {
			m.cfg.Metrics.WindowsSpilled.Inc()
		}
	}
	return &res, nil
}

// PrefetchWatermark implements the engine's Prefetcher hook: after the
// watermark wm fired its windows, warm the spill plane's cache with the
// panes of the next SpillAhead windows, so that if their accuracy check
// fails the exact fallback reads from memory instead of S. Results are
// unaffected — prefetching only moves bytes earlier.
func (m *ScalarManager) PrefetchWatermark(wm int64) {
	if m.cfg.SpillAhead <= 0 || !m.started || m.cfg.Spec.Domain == window.CountDomain {
		return
	}
	first := m.cfg.Spec.FirstCompleteBy(wm) + 1
	if first < m.nextFire {
		first = m.nextFire
	}
	for id := first; id < first+window.ID(m.cfg.SpillAhead); id++ {
		start, end := m.cfg.Spec.Bounds(id)
		m.arc.prefetch(start, end)
	}
}

// MemUsage implements Manager: the budget-resident state (samples plus
// per-window statistics) and the transient archive chunk buffers.
func (m *ScalarManager) MemUsage() int {
	return m.arc.memUsage() + m.BudgetMemUsage()
}

// BudgetMemUsage is the memory used to produce results — the reservoir
// samples and per-window statistics charged against b. This is the
// quantity Fig. 7 shows staying flat at ≈b while the exact engine's
// buffer grows with the window; the archive's write-behind chunks
// (bounded by ArchiveChunk·overlap tuples regardless of window size)
// are the cost of shipping tuples to S, not of producing results, and
// are excluded here just as the paper excludes its workers' S writes.
func (m *ScalarManager) BudgetMemUsage() int {
	n := 0
	for _, w := range m.wins {
		if w.res != nil {
			n += w.res.MemSize()
		}
		n += w.all.MemSize()
	}
	return n
}

// LateDropped returns the number of dropped late tuples.
func (m *ScalarManager) LateDropped() int64 { return m.late }
