package core

import (
	"math"
	"math/rand"
	"testing"

	"spear/internal/agg"
	"spear/internal/metrics"
	"spear/internal/stats"
	"spear/internal/storage"
	"spear/internal/tuple"
	"spear/internal/window"
)

// TestKnownGroupsFallbackFetchesFromStore: a known-groups window whose
// accuracy check fails must be reconstructed bit-exactly from the
// archive (the window was never buffered).
func TestKnownGroupsFallbackFetchesFromStore(t *testing.T) {
	store := storage.NewMemStore()
	cfg := mkCfg(agg.Func{Op: agg.Mean}, 40)
	cfg.Store = store
	cfg.KeyBy = tuple.FieldString(0)
	cfg.Value = tuple.FieldFloat(1)
	cfg.KnownGroups = 2
	cfg.ArchiveChunk = 16
	reg := metrics.NewRegistry()
	cfg.Metrics = reg.Worker("w")
	m, err := NewGroupedManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(21))
	sum := map[string]float64{}
	n := map[string]float64{}
	for i := 0; i < 3000; i++ {
		g := []string{"a", "b"}[r.Intn(2)]
		v := math.Abs(r.NormFloat64()) * math.Pow(10, float64(r.Intn(7)))
		sum[g] += v
		n[g]++
		if _, err := m.OnTuple(tuple.New(int64(i)%100, tuple.String_(g), tuple.Float(v))); err != nil {
			t.Fatal(err)
		}
	}
	rs, err := m.OnWatermark(100)
	if err != nil {
		t.Fatal(err)
	}
	res := rs[0]
	if res.Mode != ModeExact || !res.FetchedFromStore {
		t.Fatalf("expected archive fallback, got %+v", res)
	}
	for g := range sum {
		exact := sum[g] / n[g]
		if math.Abs(res.Groups[g]-exact) > 1e-9*exact {
			t.Errorf("group %s: %v vs %v", g, res.Groups[g], exact)
		}
	}
	if cfg.Metrics.EstimationFailures.Load() != 1 {
		t.Error("estimation failure not counted")
	}
	if store.Stats().Gets == 0 {
		t.Error("archive never read")
	}
}

// TestKnownGroupsArchiveEviction: panes of fired windows must be
// deleted from S.
func TestKnownGroupsArchiveEviction(t *testing.T) {
	store := storage.NewMemStore()
	cfg := mkCfg(agg.Func{Op: agg.Mean}, 100)
	cfg.Store = store
	cfg.KeyBy = tuple.FieldString(0)
	cfg.Value = tuple.FieldFloat(1)
	cfg.KnownGroups = 1
	cfg.ArchiveChunk = 8
	m, _ := NewGroupedManager(cfg)
	for ts := int64(0); ts < 500; ts++ {
		m.OnTuple(tuple.New(ts, tuple.String_("g"), tuple.Float(1)))
	}
	if _, err := m.OnWatermark(500); err != nil {
		t.Fatal(err)
	}
	if keys := store.Keys(); len(keys) != 0 {
		t.Errorf("panes survived eviction: %v", keys)
	}
}

// TestKnownGroupsCountDomain: count windows with known groups close on
// arrival and estimate from arrival-built samples.
func TestKnownGroupsCountDomain(t *testing.T) {
	cfg := mkCfg(agg.Func{Op: agg.Mean}, 200)
	cfg.Spec = window.CountTumbling(500)
	cfg.KeyBy = tuple.FieldString(0)
	cfg.Value = tuple.FieldFloat(1)
	cfg.KnownGroups = 2
	m, _ := NewGroupedManager(cfg)
	var got []Result
	for i := 0; i < 1200; i++ {
		g := []string{"x", "y"}[i%2]
		rs, err := m.OnTuple(tuple.New(int64(i*3), tuple.String_(g), tuple.Float(7)))
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rs...)
	}
	if len(got) != 2 {
		t.Fatalf("fired %d windows, want 2", len(got))
	}
	for _, r := range got {
		if r.Mode != ModeSampled {
			t.Errorf("Mode = %v", r.Mode)
		}
		if r.Groups["x"] != 7 || r.Groups["y"] != 7 {
			t.Errorf("groups = %v", r.Groups)
		}
		if r.N != 500 {
			t.Errorf("N = %d", r.N)
		}
	}
	// Watermarks ignored in count domain.
	if rs, err := m.OnWatermark(1 << 40); err != nil || rs != nil {
		t.Errorf("count-domain watermark fired %v, %v", rs, err)
	}
}

// TestKnownGroupsSliding: overlapping windows keep independent
// reservoirs and fire in order.
func TestKnownGroupsSliding(t *testing.T) {
	cfg := mkCfg(agg.Func{Op: agg.Mean}, 100)
	cfg.Spec = window.Spec{Domain: window.TimeDomain, Range: 100, Slide: 50}
	cfg.KeyBy = tuple.FieldString(0)
	cfg.Value = tuple.FieldFloat(1)
	cfg.KnownGroups = 1
	m, _ := NewGroupedManager(cfg)
	// Value = window of the tuple's ts so overlapping windows have
	// different (checkable) means.
	for ts := int64(0); ts < 300; ts++ {
		m.OnTuple(tuple.New(ts, tuple.String_("g"), tuple.Float(float64(ts))))
	}
	rs, err := m.OnWatermark(300)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.Start < 0 || r.End > 300 {
			continue
		}
		wantMean := float64(r.Start+r.End-1) / 2
		if math.Abs(r.Groups["g"]-wantMean) > wantMean*0.10+1 {
			t.Errorf("window [%d,%d): mean %v, want ≈%v", r.Start, r.End, r.Groups["g"], wantMean)
		}
	}
	if len(rs) < 4 {
		t.Errorf("only %d sliding windows fired", len(rs))
	}
}

// TestGroupedLateTuplesKnownGroups: late tuples in the arrival-sampled
// path are counted and excluded.
func TestGroupedLateTuplesKnownGroups(t *testing.T) {
	cfg := mkCfg(agg.Func{Op: agg.Mean}, 50)
	cfg.KeyBy = tuple.FieldString(0)
	cfg.Value = tuple.FieldFloat(1)
	cfg.KnownGroups = 1
	m, _ := NewGroupedManager(cfg)
	m.OnTuple(tuple.New(50, tuple.String_("g"), tuple.Float(1)))
	if _, err := m.OnWatermark(100); err != nil {
		t.Fatal(err)
	}
	m.OnTuple(tuple.New(10, tuple.String_("g"), tuple.Float(999)))
	if m.LateDropped() != 1 {
		t.Errorf("LateDropped = %d", m.LateDropped())
	}
	m.OnTuple(tuple.New(150, tuple.String_("g"), tuple.Float(2)))
	rs, _ := m.OnWatermark(200)
	if len(rs) != 1 || rs[0].Groups["g"] != 2 {
		t.Errorf("late tuple leaked: %+v", rs)
	}
}

// TestScalarCountSlidingWindows: overlapping count windows on the
// scalar manager.
func TestScalarCountSlidingWindows(t *testing.T) {
	cfg := mkCfg(agg.Func{Op: agg.Sum}, 1000)
	cfg.Spec = window.CountSliding(100, 50)
	m, _ := NewScalarManager(cfg)
	var got []Result
	for i := 0; i < 400; i++ {
		rs, err := m.OnTuple(tuple.New(int64(i*13), tuple.Float(1)))
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rs...)
	}
	full := 0
	for _, r := range got {
		if r.Start >= 0 && r.N == 100 {
			if r.Scalar != 100 {
				t.Errorf("window [%d,%d) sum = %v", r.Start, r.End, r.Scalar)
			}
			full++
		}
	}
	if full < 5 {
		t.Errorf("only %d full sliding count windows", full)
	}
}

// TestGroupedSkipCollectConsistency: the incremental fast path (window
// never materialized) and the forced-sampling path see the same window
// boundaries and sizes.
func TestGroupedSkipCollectConsistency(t *testing.T) {
	feed := func(m Manager) []Result {
		for i := 0; i < 4000; i++ {
			g := []string{"a", "b", "c"}[i%3]
			m.OnTuple(tuple.New(int64(i)%100, tuple.String_(g), tuple.Float(float64(i%50))))
		}
		rs, err := m.OnWatermark(100)
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	fast := mkCfg(agg.Func{Op: agg.Mean}, 3000)
	fast.KeyBy = tuple.FieldString(0)
	fast.Value = tuple.FieldFloat(1)
	mf, _ := NewGroupedManager(fast)

	slow := fast
	slow.DisableIncremental = true
	msl, _ := NewGroupedManager(slow)

	a, b := feed(mf), feed(msl)
	if len(a) != 1 || len(b) != 1 {
		t.Fatalf("windows: %d vs %d", len(a), len(b))
	}
	if a[0].N != b[0].N || a[0].Start != b[0].Start || a[0].End != b[0].End {
		t.Errorf("window metadata differs: %+v vs %+v", a[0], b[0])
	}
	if a[0].Mode != ModeIncremental || b[0].Mode != ModeSampled {
		t.Errorf("modes = %v, %v", a[0].Mode, b[0].Mode)
	}
	for g, av := range a[0].Groups {
		if rel := stats.RelativeError(b[0].Groups[g], av); rel > 0.10 {
			t.Errorf("group %s: sampled %v vs exact %v", g, b[0].Groups[g], av)
		}
	}
}
