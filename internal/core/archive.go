package core

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"spear/internal/spill"
	"spear/internal/storage"
	"spear/internal/tuple"
	"spear/internal/window"
)

// archive streams every arriving tuple to secondary storage S, honoring
// the model's invariant that "in any case, τ is stored in S as is common
// practice" (§3.1). Tuples are bucketed into panes — tumbling intervals
// of one window slide — so each tuple is written once even under sliding
// windows (the single-buffer spirit), and a window fetch reads exactly
// Range/Slide panes.
//
// Writes are batched in small chunks; the chunk buffer is transient
// working memory, not window state, and is bounded by the chunk size.
type archive struct {
	// store is always a spill.Plane: every archive operation goes
	// through the async spill plane, which degenerates to a synchronous
	// passthrough when the plane is not enabled. Keeping the seam
	// concrete (not the raw SpillStore interface) is what lets the
	// spearlint hotloop analyzer assert that no hot path talks to
	// secondary storage directly.
	store *spill.Plane
	key   string
	spec  window.Spec
	chunk int

	pending map[int64][]tuple.Tuple // pane index → buffered tuples
	minPane int64                   // smallest pane that may still exist
	haveMin bool

	// cur caches the buffer of the pane tuples are currently arriving
	// into, keeping the per-tuple hot path free of map operations:
	// tuples land in consecutive panes, so add is a compare + append
	// until the pane rolls over. Invariant: while curOK, pending has no
	// entry for curP — stash() reinstates it before any path that walks
	// the map.
	cur   []tuple.Tuple
	curP  int64
	curOK bool

	// spare recycles the backing array of the last flushed chunk so the
	// steady state allocates no chunk buffers at all: without it every
	// chunk re-grows from nil through the append doubling chain,
	// copying ~2× the chunk per flush. Safe because SpillStore.Store
	// encodes and must not retain the slice.
	spare []tuple.Tuple

	// Checkpoint bookkeeping. flushed counts the chunks stored per live
	// pane so recovery can Truncate away chunks a crashed run appended
	// after the snapshot. deferDel switches evictBefore from deleting
	// panes to recording them; the checkpoint coordinator deletes them
	// once the checkpoint that no longer references them is durable
	// (deleting eagerly would strand a restored snapshot that still
	// needs the pane for its exact fallback).
	flushed  map[int64]int
	deferDel bool
	deferred []string
}

func newArchive(store storage.SpillStore, key string, spec window.Spec, chunk int, deferDel bool) *archive {
	return &archive{
		store:    spill.AsPlane(store),
		key:      key,
		spec:     spec,
		chunk:    chunk,
		pending:  make(map[int64][]tuple.Tuple),
		flushed:  make(map[int64]int),
		deferDel: deferDel,
	}
}

func (a *archive) paneOf(pos int64) int64 {
	p := pos / a.spec.Slide
	if pos%a.spec.Slide != 0 && pos < 0 {
		p--
	}
	return p
}

func (a *archive) paneKey(p int64) string {
	return fmt.Sprintf("%s/p%d", a.key, p)
}

// add buffers one tuple and flushes its pane's chunk when full. This is
// the per-tuple hot path of every manager ("τ is stored in S" runs for
// each arrival): the common case is a pane-index compare plus an append
// into the cached cur buffer — no map operations — and full chunks hand
// their backing array to spare instead of the GC.
func (a *archive) add(t tuple.Tuple) error {
	p := a.paneOf(t.Ts)
	if !a.curOK || p != a.curP {
		a.rollTo(p)
	}
	a.cur = append(a.cur, t)
	if len(a.cur) >= a.chunk {
		if err := a.store.Store(a.paneKey(p), a.cur); err != nil {
			return fmt.Errorf("core: archive pane %d: %w", p, err)
		}
		a.flushed[p]++
		a.cur = a.cur[:0] // backing array recycled in place
	}
	return nil
}

// rollTo retires the cached pane buffer into pending and loads (or
// starts) pane p's buffer into the cache.
func (a *archive) rollTo(p int64) {
	a.stash()
	if !a.haveMin || p < a.minPane {
		a.minPane = p
		a.haveMin = true
	}
	if buf, ok := a.pending[p]; ok {
		a.cur = buf
		delete(a.pending, p)
	} else if cap(a.spare) > 0 {
		a.cur, a.spare = a.spare[:0], nil
	} else {
		a.cur = nil
	}
	a.curP, a.curOK = p, true
}

// stash reinstates the cached pane buffer into the pending map. Every
// path that reads or mutates pending as a whole calls it first.
func (a *archive) stash() {
	if !a.curOK {
		return
	}
	if len(a.cur) > 0 {
		a.pending[a.curP] = a.cur
	} else if cap(a.cur) > cap(a.spare) {
		a.spare = a.cur[:0]
	}
	a.cur, a.curOK = nil, false
}

func (a *archive) flushPane(p int64) error {
	if a.curOK && p == a.curP {
		a.stash()
	}
	ts := a.pending[p]
	if len(ts) == 0 {
		return nil
	}
	if err := a.store.Store(a.paneKey(p), ts); err != nil {
		return fmt.Errorf("core: archive pane %d: %w", p, err)
	}
	a.flushed[p]++
	delete(a.pending, p)
	if cap(ts) > cap(a.spare) {
		a.spare = ts[:0]
	}
	return nil
}

// flushAll stores every pending chunk; the checkpoint snapshot calls it
// so the snapshotted flushed-chunk counts cover all archived tuples.
func (a *archive) flushAll() error {
	a.stash()
	for p := range a.pending {
		if err := a.flushPane(p); err != nil {
			return err
		}
	}
	return nil
}

// fetch returns every archived tuple with position in [start, end),
// flushing pending chunks of the covered panes first.
func (a *archive) fetch(start, end int64) ([]tuple.Tuple, error) {
	pLo := a.paneOf(start)
	pHi := a.paneOf(end - 1)
	var out []tuple.Tuple
	for p := pLo; p <= pHi; p++ {
		if err := a.flushPane(p); err != nil {
			return nil, err
		}
		ts, err := a.store.Get(a.paneKey(p))
		if err != nil {
			if isNotFound(err) {
				continue // pane received no tuples
			}
			return nil, err
		}
		for _, t := range ts {
			if t.Ts >= start && t.Ts < end {
				out = append(out, t)
			}
		}
	}
	return out, nil
}

// prefetch asks the spill plane to warm its cache with the already-
// flushed panes covering [start, end), so a window whose fire time the
// watermark is approaching finds its spilled tuples in memory instead
// of paying a round-trip to S per pane. Pending in-memory chunks are
// deliberately not flushed: the plane appends each later chunk to the
// cached segment as it lands, keeping the cache coherent.
func (a *archive) prefetch(start, end int64) {
	if !a.store.Async() {
		return
	}
	pLo := a.paneOf(start)
	pHi := a.paneOf(end - 1)
	var keys []string
	for p := pLo; p <= pHi; p++ {
		if a.flushed[p] > 0 {
			keys = append(keys, a.paneKey(p))
		}
	}
	if len(keys) > 0 {
		a.store.Prefetch(keys...)
	}
}

// evictBefore deletes panes wholly before position pos.
func (a *archive) evictBefore(pos int64) error {
	if !a.haveMin {
		return nil
	}
	a.stash()
	limit := a.paneOf(pos) // panes < limit end at or before pos
	for p := a.minPane; p < limit; p++ {
		delete(a.pending, p)
		delete(a.flushed, p)
		if a.deferDel {
			a.deferred = append(a.deferred, a.paneKey(p))
			continue
		}
		if err := a.store.Delete(a.paneKey(p)); err != nil {
			return err
		}
	}
	if limit > a.minPane {
		a.minPane = limit
	}
	return nil
}

// memUsage returns the transient chunk-buffer bytes.
func (a *archive) memUsage() int {
	n := 0
	for _, ts := range a.pending {
		for _, t := range ts {
			n += t.MemSize()
		}
	}
	for _, t := range a.cur {
		n += t.MemSize()
	}
	return n
}

// takeDeferred returns and clears the pane keys whose deletion was
// deferred by deferDel.
func (a *archive) takeDeferred() []string {
	d := a.deferred
	a.deferred = nil
	return d
}

// appendState flushes pending chunks and appends the archive cursor:
// minPane, and per live pane the number of chunks stored. Pane order is
// sorted for deterministic bytes.
func (a *archive) appendState(dst []byte) ([]byte, error) {
	if err := a.flushAll(); err != nil {
		return nil, err
	}
	// Durability barrier: the snapshot's flushed-chunk counts promise
	// that S holds at least that many chunks per pane, and recovery's
	// Truncate-based rewind relies on it. With the async plane those
	// Stores may still be queued; wait for them to land before the
	// snapshot is acked, so the checkpoint's manifest-is-commit-point
	// semantics extend to spilled state.
	if err := a.store.Barrier(); err != nil {
		return nil, err
	}
	dst = tuple.AppendBool(dst, a.haveMin)
	dst = tuple.AppendI64(dst, a.minPane)
	panes := make([]int64, 0, len(a.flushed))
	for p := range a.flushed {
		panes = append(panes, p)
	}
	sort.Slice(panes, func(i, j int) bool { return panes[i] < panes[j] })
	dst = tuple.AppendUvar(dst, uint64(len(panes)))
	for _, p := range panes {
		dst = tuple.AppendI64(dst, p)
		dst = tuple.AppendUvar(dst, uint64(a.flushed[p]))
	}
	return dst, nil
}

// readState restores the cursor written by appendState; errors latch in
// rd. Pending chunks are empty by construction (appendState flushed).
func (a *archive) readState(rd *tuple.WireReader) {
	a.haveMin = rd.Bool()
	a.minPane = rd.I64()
	n := rd.Count(2)
	if rd.Err() != nil {
		return
	}
	a.pending = make(map[int64][]tuple.Tuple)
	a.flushed = make(map[int64]int, n)
	a.deferred = nil
	a.cur, a.curOK = nil, false
	for i := 0; i < n; i++ {
		p := rd.I64()
		c := rd.Uvar()
		if rd.Err() != nil {
			return
		}
		if _, dup := a.flushed[p]; dup || c == 0 {
			rd.Corrupt("archive pane table")
			return
		}
		a.flushed[p] = int(c)
	}
}

// rewind reconciles secondary storage with the restored cursor: panes a
// crashed run created after the snapshot are deleted, panes it extended
// are truncated back to the snapshotted chunk count, and panes the
// snapshot requires must still exist.
func (a *archive) rewind() error {
	prefix := a.key + "/p"
	keys, err := a.store.List(prefix)
	if err != nil {
		return err
	}
	seen := make(map[int64]bool, len(keys))
	for _, k := range keys {
		p, perr := strconv.ParseInt(strings.TrimPrefix(k, prefix), 10, 64)
		if perr != nil {
			// Foreign file under our prefix; not a pane we manage.
			continue
		}
		want, live := a.flushed[p]
		if !live {
			if err := a.store.Delete(k); err != nil {
				return err
			}
			continue
		}
		seen[p] = true
		if err := a.store.Truncate(k, want); err != nil {
			return err
		}
	}
	for p := range a.flushed {
		if !seen[p] {
			return fmt.Errorf("core: rewind: archive pane %d missing from store", p)
		}
	}
	return nil
}

func isNotFound(err error) bool {
	return errors.Is(err, storage.ErrNotFound)
}
