package core

import (
	"errors"
	"fmt"

	"spear/internal/storage"
	"spear/internal/tuple"
	"spear/internal/window"
)

// archive streams every arriving tuple to secondary storage S, honoring
// the model's invariant that "in any case, τ is stored in S as is common
// practice" (§3.1). Tuples are bucketed into panes — tumbling intervals
// of one window slide — so each tuple is written once even under sliding
// windows (the single-buffer spirit), and a window fetch reads exactly
// Range/Slide panes.
//
// Writes are batched in small chunks; the chunk buffer is transient
// working memory, not window state, and is bounded by the chunk size.
type archive struct {
	store storage.SpillStore
	key   string
	spec  window.Spec
	chunk int

	pending map[int64][]tuple.Tuple // pane index → buffered tuples
	minPane int64                   // smallest pane that may still exist
	haveMin bool
}

func newArchive(store storage.SpillStore, key string, spec window.Spec, chunk int) *archive {
	return &archive{
		store:   store,
		key:     key,
		spec:    spec,
		chunk:   chunk,
		pending: make(map[int64][]tuple.Tuple),
	}
}

func (a *archive) paneOf(pos int64) int64 {
	p := pos / a.spec.Slide
	if pos%a.spec.Slide != 0 && pos < 0 {
		p--
	}
	return p
}

func (a *archive) paneKey(p int64) string {
	return fmt.Sprintf("%s/p%d", a.key, p)
}

// add buffers one tuple and flushes its pane's chunk when full.
func (a *archive) add(t tuple.Tuple) error {
	p := a.paneOf(t.Ts)
	if !a.haveMin || p < a.minPane {
		a.minPane = p
		a.haveMin = true
	}
	a.pending[p] = append(a.pending[p], t)
	if len(a.pending[p]) >= a.chunk {
		return a.flushPane(p)
	}
	return nil
}

func (a *archive) flushPane(p int64) error {
	ts := a.pending[p]
	if len(ts) == 0 {
		return nil
	}
	if err := a.store.Store(a.paneKey(p), ts); err != nil {
		return fmt.Errorf("core: archive pane %d: %w", p, err)
	}
	delete(a.pending, p)
	return nil
}

// fetch returns every archived tuple with position in [start, end),
// flushing pending chunks of the covered panes first.
func (a *archive) fetch(start, end int64) ([]tuple.Tuple, error) {
	pLo := a.paneOf(start)
	pHi := a.paneOf(end - 1)
	var out []tuple.Tuple
	for p := pLo; p <= pHi; p++ {
		if err := a.flushPane(p); err != nil {
			return nil, err
		}
		ts, err := a.store.Get(a.paneKey(p))
		if err != nil {
			if isNotFound(err) {
				continue // pane received no tuples
			}
			return nil, err
		}
		for _, t := range ts {
			if t.Ts >= start && t.Ts < end {
				out = append(out, t)
			}
		}
	}
	return out, nil
}

// evictBefore deletes panes wholly before position pos.
func (a *archive) evictBefore(pos int64) error {
	if !a.haveMin {
		return nil
	}
	limit := a.paneOf(pos) // panes < limit end at or before pos
	for p := a.minPane; p < limit; p++ {
		delete(a.pending, p)
		if err := a.store.Delete(a.paneKey(p)); err != nil {
			return err
		}
	}
	if limit > a.minPane {
		a.minPane = limit
	}
	return nil
}

// memUsage returns the transient chunk-buffer bytes.
func (a *archive) memUsage() int {
	n := 0
	for _, ts := range a.pending {
		for _, t := range ts {
			n += t.MemSize()
		}
	}
	return n
}

func isNotFound(err error) bool {
	return errors.Is(err, storage.ErrNotFound)
}
