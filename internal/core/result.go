package core

import (
	"fmt"

	"spear/internal/col"
	"spear/internal/tuple"
	"spear/internal/window"
)

// Mode says how a window result was produced.
type Mode uint8

// Result production modes.
const (
	// ModeExact means the whole window was processed (ε̂_w > ε, or
	// approximation was impossible). Performance is identical to a
	// conventional SPE plus the accuracy check.
	ModeExact Mode = iota
	// ModeSampled means the result was estimated from the budget's
	// sample — the accelerated path.
	ModeSampled
	// ModeIncremental means a non-holistic operation was maintained
	// exactly at tuple arrival and finalized in O(1).
	ModeIncremental
	// ModeShed means the accuracy check failed but load shedding had
	// dropped the window's archive, so the result was produced from
	// the sample anyway. EstError carries the realized bound — which
	// may exceed ε: this is the one mode whose contract is "best
	// effort under overload", and ContractMet reports false for it.
	ModeShed
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeSampled:
		return "sampled"
	case ModeIncremental:
		return "incremental"
	case ModeShed:
		return "shed"
	default:
		return "exact"
	}
}

// Accelerated reports whether the window avoided full processing.
func (m Mode) Accelerated() bool { return m != ModeExact }

// Result is one window's output R_w (or R̂_w).
type Result struct {
	WindowID   window.ID
	Start, End int64 // [Start, End) in the spec's domain
	N          int64 // window size |S_w|
	SampleN    int   // tuples the result was computed from

	Mode Mode
	// EstError is the estimated error ε̂_w the accuracy check
	// compared against ε (0 for exact and incremental results). For
	// ModeShed it is the realized bound of the forced sample answer,
	// possibly above Epsilon.
	EstError float64
	// Epsilon and Confidence echo the accuracy contract (ε, α) the
	// window was held to, so every result carries its own error/
	// confidence context even as budgets move at runtime.
	Epsilon    float64
	Confidence float64
	// Budget is the tuple budget in force when the window was
	// produced — the adaptive controller's trajectory, per window.
	Budget int
	// FetchedFromStore reports whether secondary storage was read.
	FetchedFromStore bool

	// Scalar holds the result of a scalar operation.
	Scalar float64
	// Groups holds per-group results for grouped operations; nil for
	// scalar ones.
	Groups map[string]float64
}

// ContractMet reports whether the result honors the query's (ε, α)
// accuracy contract: exact and incremental results trivially, sampled
// results by the passed check; only ModeShed — a sample answer forced
// by load shedding after its accuracy check failed — does not.
func (r Result) ContractMet() bool { return r.Mode != ModeShed }

// String renders the result for logs.
func (r Result) String() string {
	if r.Groups != nil {
		return fmt.Sprintf("window[%d,%d) %s groups=%d n=%d/%d ε̂=%.4f",
			r.Start, r.End, r.Mode, len(r.Groups), r.SampleN, r.N, r.EstError)
	}
	return fmt.Sprintf("window[%d,%d) %s value=%g n=%d/%d ε̂=%.4f",
		r.Start, r.End, r.Mode, r.Scalar, r.SampleN, r.N, r.EstError)
}

// Manager is the SPEAr window manager interface: identical lifecycle to
// window.Manager but producing Results instead of raw windows.
type Manager interface {
	// OnTuple ingests one tuple; count-domain specs may complete
	// windows here.
	OnTuple(t tuple.Tuple) ([]Result, error)
	// OnWatermark completes every window with end ≤ wm.
	OnWatermark(wm int64) ([]Result, error)
	// MemUsage returns the bytes currently held for result
	// production (the Fig. 7 metric).
	MemUsage() int
}

// BatchManager is the optional micro-batch fast path on Manager. The
// engine's windowed workers assert for it once per run and deliver
// contiguous runs of data tuples through OnTupleBatch, amortizing
// per-tuple overheads (metrics updates, bounds checks) across the run.
//
// The contract is strict equivalence: OnTupleBatch(ts) must leave the
// manager in the same state, and return the same results in the same
// order, as calling OnTuple for each tuple of ts in order. Managers
// that do not implement it keep working through the IngestBatch shim.
type BatchManager interface {
	OnTupleBatch(ts []tuple.Tuple) ([]Result, error)
}

// ColumnManager is the optional columnar fast path on Manager. When
// Config.Columnar is enabled, the engine's windowed workers convert
// each contiguous run of data tuples into a pooled col.ColumnBatch and
// deliver it here instead of OnTupleBatch.
//
// The contract is the same strict equivalence as BatchManager's, one
// level up: OnColumnBatch(cb) must leave the manager in the same state,
// and return the same results in the same order, as OnTupleBatch over
// cb.Rows() — which itself must equal per-tuple OnTuple calls. Window
// values AND accelerate/exact Mode decisions are bit-identical by
// construction: the kernels consume the same float bits in the same
// per-window arrival order and draw the same PRNG streams. A manager
// whose configuration or batch shape is outside its kernel's reach must
// fall back to OnTupleBatch(cb.Rows()) internally, never approximate.
//
// The batch is borrowed: it is valid only for the duration of the call
// (the worker refills it for the next batch), so kernels must not
// retain cb or any slice obtained from it.
type ColumnManager interface {
	OnColumnBatch(cb *col.ColumnBatch) ([]Result, error)
}

// Prefetcher is the optional watermark-driven read-ahead hook on
// Manager. After a watermark round, the engine invokes it with the
// merged watermark; managers backed by the async spill plane use it to
// warm the plane's chunk cache with the spilled panes of the windows
// that will fire next, so a failed accuracy check finds the window in
// memory instead of paying a round-trip to S per pane.
//
// PrefetchWatermark must be side-effect free with respect to results:
// it may only move data, never change what any window produces.
type Prefetcher interface {
	PrefetchWatermark(wm int64)
}

// IngestBatch feeds ts through m: via the OnTupleBatch fast path when
// the manager implements BatchManager, falling back to per-tuple
// OnTuple calls otherwise. Results are concatenated in ingestion order.
// On error, tuples before the failing one have been ingested.
func IngestBatch(m Manager, ts []tuple.Tuple) ([]Result, error) {
	if bm, ok := m.(BatchManager); ok {
		return bm.OnTupleBatch(ts)
	}
	var out []Result
	for _, t := range ts {
		rs, err := m.OnTuple(t)
		if len(rs) > 0 {
			out = append(out, rs...)
		}
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
