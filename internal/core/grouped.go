package core

import (
	"fmt"
	"math"
	"time"

	"spear/internal/agg"
	"spear/internal/sample"
	"spear/internal/stats"
	"spear/internal/tuple"
	"spear/internal/window"
)

// GroupedManager is the SPEAr window manager for grouped stateful
// operations (§4.1 "Grouped"). Its architecture depends on whether the
// number of distinct groups is known at CQ submission:
//
// Unknown groups (the general case): grouped results must contain every
// distinct group, and a stratified sample cannot be built online without
// knowing group frequencies, so the window's tuples are buffered by the
// ordinary single-buffer design while the budget b accumulates each
// group's frequency and value variance. At watermark arrival the manager
// derives a congressional sample allocation from the frequencies,
// estimates the L1-aggregated error, and — when the check passes —
// builds the stratified sample during the eviction scan the
// single-buffer design performs anyway, aggregating only the sample
// instead of the whole window.
//
// Known groups (Config.KnownGroups > 0): the budget is divided equally
// and per-group reservoirs are filled at tuple arrival, so the window is
// never buffered at all — tuples are archived to secondary storage S
// exactly like the scalar path, the accelerated result costs O(b) with
// no scan ("no scans of S_w are needed and SPEAr produces R̂_w at a
// minimal cost"), and a failed check fetches the window back from S.
type GroupedManager struct {
	//lint:allow snapshotcover config handle; only telemetry under it mutates
	cfg Config
	est GroupedEstimator

	// curBudget is the live tuple budget b: cfg.BudgetTuples at start,
	// retuned online through cfg.Cell by the adaptive controller.
	curBudget int
	// shed mirrors the controller's shedding flag: while set, the known
	// path skips archive writes (the saturating per-tuple cost) and
	// taints affected windows; group metadata and reservoirs stay live.
	shed  bool
	sheds int64

	// Buffered path (unknown groups).
	buf *window.SingleBuffer

	// Arrival-sampled path (known groups).
	arc      *archive
	started  bool
	fired    bool // some window has actually closed; lateness is defined from here on
	nextFire window.ID
	maxPos   int64
	late     int64

	wins map[window.ID]*groupedWin
	seq  int64
	now  func() time.Time
}

type groupedWin struct {
	gs    *sample.GroupStats
	known *sample.GroupReservoirs // per-group reservoirs; nil when unknown groups or per-group cap was 0 at creation
	// tainted marks that load shedding skipped archive writes while the
	// window was open: its pane set in S is incomplete and the exact
	// fallback is no longer available.
	tainted bool
}

// NewGroupedManager returns a manager for cfg. cfg.KeyBy must be set.
func NewGroupedManager(cfg Config) (*GroupedManager, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.KeyBy == nil {
		return nil, fmt.Errorf("core: GroupedManager without KeyBy; use NewScalarManager")
	}
	est := cfg.GroupedEstimator
	if est == nil {
		est = defaultGroupedEstimator(cfg.Agg)
	}
	m := &GroupedManager{
		cfg:       cfg,
		est:       est,
		curBudget: cfg.BudgetTuples,
		wins:      make(map[window.ID]*groupedWin),
		now:       cfg.clock(),
	}
	if cfg.Metrics != nil {
		cfg.Metrics.BudgetTuples.Set(int64(m.curBudget))
	}
	if cfg.KnownGroups > 0 {
		m.arc = newArchive(cfg.Store, cfg.Key, cfg.Spec, cfg.ArchiveChunk, cfg.DeferStoreDeletes)
	} else {
		buf, err := window.NewSingleBuffer(window.Config{
			Spec: cfg.Spec,
			// Windows answered from per-group metadata never need
			// their tuples materialized; the evict scan is the only
			// window-time tuple work SPEAr pays (§4.2: "this scan is
			// already required by the single buffer design").
			SkipCollect: m.incrementalApplies,
		})
		if err != nil {
			return nil, err
		}
		m.buf = buf
	}
	return m, nil
}

// incrementalApplies reports whether window id will be produced from
// per-group metadata alone (the non-holistic grouped fast path).
func (m *GroupedManager) incrementalApplies(id window.ID) bool {
	if !m.cfg.Agg.Incremental() || m.cfg.DisableIncremental {
		return false
	}
	w, ok := m.wins[id]
	return ok && w.gs.Len() > 0 && w.gs.Len() <= m.curBudget
}

// perGroupCap divides the live budget equally across the declared
// groups. It deliberately floors to zero, not one: with more groups
// than budget tuples there is no per-group allocation that respects the
// aggregate budget (the old floor-to-1 let the sample grow to
// KnownGroups tuples, silently exceeding b and disagreeing with the
// buffered path's ≤ b gate). Zero means "no reservoirs" — windows
// opened under it carry metadata only and are answered exactly.
func (m *GroupedManager) perGroupCap() int {
	return m.curBudget / m.cfg.KnownGroups
}

// syncControl applies the controller cell's published budget and
// shedding flag. Called once at every ingest entry point: two atomic
// loads in the common (unchanged) case.
func (m *GroupedManager) syncControl() {
	c := m.cfg.Cell
	if c == nil {
		return
	}
	if b := c.Budget(); b != m.curBudget {
		m.SetBudget(b)
	}
	m.SetShedding(c.Shedding())
}

// SetBudget retunes the live budget to b tuples, resizing every open
// window's per-group reservoirs (known path) so shrinking degrades
// per-group error evenly. A budget of zero (or a per-group cap of zero)
// drops the reservoirs: subsequent windows are metadata-only and
// answered exactly. Windows opened without reservoirs stay without them
// — a reservoir cannot be built retroactively.
func (m *GroupedManager) SetBudget(b int) {
	if b < 0 {
		b = 0
	}
	if b == m.curBudget {
		return
	}
	m.curBudget = b
	if m.cfg.KnownGroups > 0 {
		pg := m.perGroupCap()
		for _, w := range m.wins {
			if w.known == nil {
				continue
			}
			if pg <= 0 {
				w.known = nil
			} else {
				w.known.Resize(pg)
			}
		}
	}
	if m.shed && !m.canShed() {
		m.shed = false
	}
	if m.cfg.Metrics != nil {
		m.cfg.Metrics.BudgetTuples.Set(int64(b))
	}
}

// canShed reports whether shedding is meaningful right now: only the
// known-groups path archives tuples (the buffered path has nothing to
// skip), and only while reservoirs exist to answer from afterwards.
func (m *GroupedManager) canShed() bool {
	return m.arc != nil && m.cfg.KnownGroups > 0 && m.perGroupCap() > 0
}

// SetShedding turns archive-write shedding on or off. Refused when the
// manager has no archive or no reservoir capacity — shedding with no
// sample to fall back on would leave windows unanswerable.
func (m *GroupedManager) SetShedding(on bool) {
	m.shed = on && m.canShed()
}

// OnTuple implements Manager: fold the tuple into each active window's
// group metadata, then buffer it (unknown groups) or archive it to S
// (known groups).
func (m *GroupedManager) OnTuple(t tuple.Tuple) ([]Result, error) {
	m.syncControl()
	rs, err := m.ingest(t)
	if err != nil {
		return rs, err
	}
	if m.cfg.Metrics != nil {
		m.cfg.Metrics.TuplesIn.Inc()
		m.cfg.Metrics.MemBytes.Set(int64(m.BudgetMemUsage()))
	}
	return rs, nil
}

// OnTupleBatch implements BatchManager: identical per-tuple state
// transitions with the telemetry updates amortized once per batch.
func (m *GroupedManager) OnTupleBatch(ts []tuple.Tuple) ([]Result, error) {
	m.syncControl()
	var out []Result
	done := 0
	for i := range ts {
		rs, err := m.ingest(ts[i])
		if len(rs) > 0 {
			//lint:ignore hotloop results are per-window fires, not per-tuple; out stays nil on most batches and preallocating len(batch) would allocate every batch
			out = append(out, rs...)
		}
		if err != nil {
			return out, err
		}
		done++
	}
	if done > 0 && m.cfg.Metrics != nil {
		m.cfg.Metrics.TuplesIn.Add(int64(done))
		m.cfg.Metrics.MemBytes.Set(int64(m.BudgetMemUsage()))
	}
	return out, nil
}

// ingest is the metrics-free per-tuple body shared by OnTuple and
// OnTupleBatch.
func (m *GroupedManager) ingest(t tuple.Tuple) ([]Result, error) {
	pos := t.Ts
	if m.cfg.Spec.Domain == window.CountDomain {
		pos = m.seq
		if m.arc != nil {
			t.Ts = pos // archive panes index by position
		}
	}
	m.seq++
	if pos > m.maxPos || m.seq == 1 {
		m.maxPos = pos
	}

	lo, hi := m.cfg.Spec.Assign(pos)
	if m.arc != nil && !m.started {
		m.started = true
		m.nextFire = lo
	} else if m.arc != nil && lo < m.nextFire && !m.fired {
		// Pre-first-fire the anchor is only the first tuple's guess;
		// multi-sender reordering at stream start must lower it, not
		// drop the tuple (see ScalarManager.ingest).
		m.nextFire = lo
	}
	nextFire := m.nextFire
	if hi >= nextFire {
		key := m.cfg.KeyBy(t)
		val := m.cfg.Value(t)
		if lo < nextFire {
			lo = nextFire
		}
		for id := lo; id <= hi; id++ {
			w, ok := m.wins[id]
			if !ok {
				w = &groupedWin{gs: sample.NewGroupStats()}
				if m.cfg.KnownGroups > 0 {
					if pg := m.perGroupCap(); pg > 0 {
						w.known = sample.NewGroupReservoirs(
							pg, sample.DeriveSeed(m.cfg.Seed, int64(id)), sample.AlgoL)
					}
				}
				m.wins[id] = w
			}
			w.gs.Add(key, val)
			if w.known != nil {
				w.known.Add(key, val)
			}
			if m.shed {
				w.tainted = true
			}
		}
	} else if m.arc != nil {
		m.late++
		if m.cfg.Metrics != nil {
			m.cfg.Metrics.LateDropped.Inc()
		}
	}

	if m.arc != nil {
		if m.shed {
			// Load shedding: skip the archive write — the saturating
			// per-tuple cost under overload. Group metadata and the
			// reservoirs above stay exact/uniform; only the exact
			// fallback is forfeited (windows were tainted above).
			m.sheds++
			if m.cfg.Metrics != nil {
				m.cfg.Metrics.TuplesShed.Inc()
			}
		} else if err := m.arc.add(t); err != nil {
			return nil, err
		}
		if m.cfg.Spec.Domain == window.CountDomain {
			return m.fireKnown(m.seq)
		}
		return nil, nil
	}

	completes, err := m.buf.OnTuple(t)
	if err != nil {
		return nil, err
	}
	if len(completes) > 0 { // count-domain windows close on arrival
		return m.produceBuffered(completes, 0)
	}
	return nil, nil
}

// OnWatermark implements Manager.
func (m *GroupedManager) OnWatermark(wm int64) ([]Result, error) {
	if m.cfg.Spec.Domain == window.CountDomain {
		return nil, nil
	}
	if m.arc != nil {
		return m.fireKnown(wm)
	}
	t0 := m.now()
	completes, err := m.buf.OnWatermark(wm)
	if err != nil {
		return nil, err
	}
	if len(completes) == 0 {
		return nil, nil
	}
	// The single-buffer trigger scan (collect + evict) just ran for
	// all fired windows at once; attribute its cost evenly.
	scanShare := m.now().Sub(t0) / time.Duration(len(completes))
	return m.produceBuffered(completes, scanShare)
}

// ---- arrival-sampled path (known groups) ----

func (m *GroupedManager) fireKnown(wm int64) ([]Result, error) {
	if !m.started {
		return nil, nil
	}
	last := m.cfg.Spec.FirstCompleteBy(wm)
	if _, hiData := m.cfg.Spec.Assign(m.maxPos); last > hiData {
		last = hiData
	}
	if last < m.nextFire {
		return nil, nil
	}
	m.fired = true // windows at and below last are closed for good
	var out []Result
	for id := m.nextFire; id <= last; id++ {
		r, err := m.produceKnown(id)
		if err != nil {
			return nil, err
		}
		if r != nil {
			out = append(out, *r)
		}
		delete(m.wins, id)
	}
	m.nextFire = last + 1
	start, _ := m.cfg.Spec.Bounds(m.nextFire)
	if err := m.arc.evictBefore(start); err != nil {
		return nil, err
	}
	if m.cfg.Metrics != nil {
		m.cfg.Metrics.MemBytes.Set(int64(m.BudgetMemUsage()))
	}
	return out, nil
}

func (m *GroupedManager) produceKnown(id window.ID) (*Result, error) {
	w, ok := m.wins[id]
	if !ok {
		return nil, nil // window received no tuples
	}
	t0 := m.now()
	startPos, endPos := m.cfg.Spec.Bounds(id)
	res := Result{
		WindowID: id, Start: startPos, End: endPos, N: w.gs.Total(),
		Epsilon: m.cfg.Epsilon, Confidence: m.cfg.Confidence, Budget: m.curBudget,
	}

	var estErr float64
	estOK := false
	if w.known != nil {
		alloc := make(map[string]int, w.known.Len())
		w.known.Each(func(key string, r *sample.Reservoir) { alloc[key] = r.Len() })
		state := GroupedState{
			Groups: w.gs, Alloc: alloc, N: res.N,
			Epsilon: m.cfg.Epsilon, Confidence: m.cfg.Confidence, Agg: m.cfg.Agg,
		}
		estErr, estOK = m.est(state)
	}
	switch {
	case estOK && estErr <= m.cfg.Epsilon:
		// The stratified sample was built at tuple arrival: O(b). A
		// shed (tainted) window lands here too when its bound passes —
		// the contract is met and the shed stays invisible.
		res.Mode = ModeSampled
		res.EstError = estErr
		res.Groups = make(map[string]float64, w.known.Len())
		sn := 0
		w.known.Each(func(key string, r *sample.Reservoir) {
			res.Groups[key] = m.cfg.Agg.Estimate(r.Items(), r.Seen())
			sn += r.Len()
		})
		res.SampleN = sn
	case w.tainted:
		// The accuracy check failed but shedding skipped archive
		// writes for this window: its pane set in S is incomplete, so
		// the exact fetch is gone. Non-holistic operations are still
		// answered exactly from the per-group metadata (Welford state
		// is immune to shedding); holistic ones emit the best-effort
		// sample answer as ModeShed with the realized bound.
		if m.cfg.Agg.Incremental() && !m.cfg.DisableIncremental {
			res.Mode = ModeIncremental
			res.Groups = make(map[string]float64, w.gs.Len())
			w.gs.Each(func(key string, wf *stats.Welford) {
				v, _ := m.cfg.Agg.FromWelford(wf)
				res.Groups[key] = v
			})
			res.SampleN = int(res.N)
		} else {
			if m.cfg.Metrics != nil {
				m.cfg.Metrics.EstimationFailures.Inc()
			}
			res.Mode = ModeShed
			if estOK {
				res.EstError = estErr
			} else {
				res.EstError = math.Inf(1)
			}
			res.Groups = make(map[string]float64, w.gs.Len())
			if w.known != nil {
				sn := 0
				w.known.Each(func(key string, r *sample.Reservoir) {
					res.Groups[key] = m.cfg.Agg.Estimate(r.Items(), r.Seen())
					sn += r.Len()
				})
				res.SampleN = sn
			} else {
				// Degenerate corner: budget collapsed to zero after the
				// window was tainted. Metadata is all that is left.
				w.gs.Each(func(key string, wf *stats.Welford) {
					v, _ := m.cfg.Agg.FromWelford(wf)
					res.Groups[key] = v
				})
			}
		}
	default:
		if m.cfg.Metrics != nil {
			m.cfg.Metrics.EstimationFailures.Inc()
		}
		ts, err := m.arc.fetch(startPos, endPos)
		if err != nil {
			return nil, fmt.Errorf("core: grouped exact fallback window %d: %w", id, err)
		}
		keys := make([]string, len(ts))
		vals := make([]float64, len(ts))
		for i, t := range ts {
			keys[i] = m.cfg.KeyBy(t)
			vals[i] = m.cfg.Value(t)
		}
		res.Mode = ModeExact
		res.Groups = agg.ComputeGrouped(keys, vals, m.cfg.Agg)
		res.SampleN = len(vals)
		res.N = int64(len(vals))
		res.FetchedFromStore = true
		if m.cfg.Metrics != nil {
			m.cfg.Metrics.TuplesProcessedFull.Add(int64(len(vals)))
		}
	}
	m.finishMetrics(&res, t0, 0)
	return &res, nil
}

// ---- buffered path (unknown groups) ----

func (m *GroupedManager) produceBuffered(completes []window.Complete, scanShare time.Duration) ([]Result, error) {
	out := make([]Result, 0, len(completes))
	for _, c := range completes {
		r := m.produceFromWindow(c, scanShare)
		out = append(out, r)
		delete(m.wins, c.ID)
		if m.nextFire <= c.ID {
			m.nextFire = c.ID + 1
		}
	}
	if m.cfg.Metrics != nil {
		m.cfg.Metrics.MemBytes.Set(int64(m.MemUsage()))
	}
	return out, nil
}

func (m *GroupedManager) produceFromWindow(c window.Complete, scanShare time.Duration) Result {
	t0 := m.now()
	res := Result{
		WindowID:   c.ID,
		Start:      c.Start,
		End:        c.End,
		N:          int64(len(c.Tuples)),
		Epsilon:    m.cfg.Epsilon,
		Confidence: m.cfg.Confidence,
		Budget:     m.curBudget,
	}
	w := m.wins[c.ID]
	if c.Uncollected && w != nil {
		res.N = w.gs.Total()
	}

	accelerated := false
	if m.incrementalApplies(c.ID) {
		// Non-holistic grouped fast path: the per-group frequency
		// and variance SPEAr keeps in the budget (§4.1) already
		// determine count/sum/mean/variance exactly, so R_w comes
		// straight from the metadata in O(‖S_w‖) — no sample, no
		// second look at the window's tuples. This is the grouped
		// form of the incremental optimization SPEAr applies to
		// non-holistic scalar operations.
		res.Mode = ModeIncremental
		res.Groups = make(map[string]float64, w.gs.Len())
		w.gs.Each(func(key string, wf *stats.Welford) {
			v, _ := m.cfg.Agg.FromWelford(wf)
			res.Groups[key] = v
		})
		res.SampleN = int(res.N)
		accelerated = true
	}
	if !accelerated && w != nil && w.gs.Len() > 0 && w.gs.Len() <= m.curBudget {
		alloc := sample.CongressAllocate(w.gs.Frequencies(), m.curBudget)
		state := GroupedState{
			Groups: w.gs, Alloc: alloc, N: res.N,
			Epsilon: m.cfg.Epsilon, Confidence: m.cfg.Confidence, Agg: m.cfg.Agg,
		}
		if estErr, ok := m.est(state); ok && estErr <= m.cfg.Epsilon {
			// Build the stratified sample in one pass over the
			// staged window (the scan the single-buffer design
			// already paid for evicting) and aggregate only the
			// sample.
			res.Mode = ModeSampled
			res.EstError = estErr
			keys := make([]string, len(c.Tuples))
			vals := make([]float64, len(c.Tuples))
			for i, t := range c.Tuples {
				keys[i] = m.cfg.KeyBy(t)
				vals[i] = m.cfg.Value(t)
			}
			strata := sample.StratifiedFromBuffer(keys, vals, alloc, sample.DeriveSeed(m.cfg.Seed, int64(c.ID)))
			res.Groups = make(map[string]float64, len(strata))
			sn := 0
			for key, sv := range strata {
				res.Groups[key] = m.cfg.Agg.Estimate(sv, w.gs.Get(key).Count())
				sn += len(sv)
			}
			res.SampleN = sn
			accelerated = true
		} else if m.cfg.Metrics != nil {
			m.cfg.Metrics.EstimationFailures.Inc()
		}
	}

	if !accelerated {
		// Normal processing: the full grouped aggregate over the
		// whole window (cost identical to the exact engine).
		keys := make([]string, len(c.Tuples))
		vals := make([]float64, len(c.Tuples))
		for i, t := range c.Tuples {
			keys[i] = m.cfg.KeyBy(t)
			vals[i] = m.cfg.Value(t)
		}
		res.Mode = ModeExact
		res.Groups = agg.ComputeGrouped(keys, vals, m.cfg.Agg)
		res.SampleN = len(vals)
		res.FetchedFromStore = c.FetchedFromStore
		if m.cfg.Metrics != nil {
			m.cfg.Metrics.TuplesProcessedFull.Add(int64(len(vals)))
		}
	}
	m.finishMetrics(&res, t0, scanShare)
	return res
}

func (m *GroupedManager) finishMetrics(res *Result, t0 time.Time, scanShare time.Duration) {
	if m.cfg.Metrics == nil {
		return
	}
	m.cfg.Metrics.ProcTime.ObserveDuration(m.now().Sub(t0) + scanShare)
	m.cfg.Metrics.WindowsTotal.Inc()
	if res.Mode.Accelerated() {
		m.cfg.Metrics.WindowsAccelerated.Inc()
	} else {
		m.cfg.Metrics.WindowsExact.Inc()
	}
	if res.Mode == ModeShed {
		m.cfg.Metrics.WindowsShed.Inc()
	}
	if res.FetchedFromStore {
		m.cfg.Metrics.WindowsSpilled.Inc()
	}
}

// PrefetchWatermark implements the engine's Prefetcher hook for the
// arrival-sampled (known groups) path: warm the spill plane's cache
// with the panes of the next SpillAhead windows. The buffered path
// keeps its window in memory (spilling only past the budget) and does
// not prefetch.
func (m *GroupedManager) PrefetchWatermark(wm int64) {
	if m.arc == nil || m.cfg.SpillAhead <= 0 || !m.started || m.cfg.Spec.Domain == window.CountDomain {
		return
	}
	first := m.cfg.Spec.FirstCompleteBy(wm) + 1
	if first < m.nextFire {
		first = m.nextFire
	}
	for id := first; id < first+window.ID(m.cfg.SpillAhead); id++ {
		start, end := m.cfg.Spec.Bounds(id)
		m.arc.prefetch(start, end)
	}
}

// MemUsage implements Manager: the per-window group metadata held in
// the budget, plus the tuple buffer (unknown groups) or transient
// archive chunks (known groups).
func (m *GroupedManager) MemUsage() int {
	n := m.BudgetMemUsage()
	if m.arc != nil {
		n += m.arc.memUsage()
	}
	return n
}

// BudgetMemUsage is the memory used to produce results: the per-window
// group metadata and samples charged against b, plus the tuple buffer
// when the design requires one (unknown groups). Archive write-behind
// chunks are excluded, as in ScalarManager.
func (m *GroupedManager) BudgetMemUsage() int {
	n := 0
	if m.buf != nil {
		n += m.buf.MemUsage()
	}
	for _, w := range m.wins {
		n += w.gs.MemSize()
		if w.known != nil {
			n += w.known.MemSize()
		}
	}
	return n
}

// LateDropped returns the number of dropped late tuples.
func (m *GroupedManager) LateDropped() int64 {
	if m.buf != nil {
		return m.buf.LateDropped()
	}
	return m.late
}

// ensure interface compliance.
var (
	_ Manager = (*ScalarManager)(nil)
	_ Manager = (*GroupedManager)(nil)
)
