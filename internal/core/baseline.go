package core

import (
	"fmt"
	"time"

	"spear/internal/agg"
	"spear/internal/tuple"
	"spear/internal/window"
)

// ExactManager is the conventional-SPE baseline ("Storm" in the
// figures): the single-buffer design with full exact processing of every
// window. It shares the Result accounting with the SPEAr managers so
// comparisons use identical instrumentation.
type ExactManager struct {
	// Only telemetry counters hanging off cfg mutate on the tuple path;
	// metrics are intentionally outside the checkpoint domain.
	//lint:allow snapshotcover config handle; only telemetry under it mutates
	cfg Config
	buf *window.SingleBuffer
	now func() time.Time
}

// NewExactManager returns the exact baseline for cfg. Epsilon,
// Confidence, and BudgetTuples are accepted (the shared Config carries
// them) but ignored; BudgetBytesLimit in ExactConfig bounds the buffer.
func NewExactManager(cfg Config, bufferBudgetBytes int) (*ExactManager, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	wcfg := window.Config{Spec: cfg.Spec, Key: cfg.Key, DeferDeletes: cfg.DeferStoreDeletes}
	if bufferBudgetBytes > 0 {
		wcfg.BudgetBytes = bufferBudgetBytes
		wcfg.Store = cfg.Store
	}
	buf, err := window.NewSingleBuffer(wcfg)
	if err != nil {
		return nil, err
	}
	return &ExactManager{cfg: cfg, buf: buf, now: cfg.clock()}, nil
}

// OnTuple implements Manager.
func (m *ExactManager) OnTuple(t tuple.Tuple) ([]Result, error) {
	completes, err := m.buf.OnTuple(t)
	if err != nil {
		return nil, err
	}
	if m.cfg.Metrics != nil {
		m.cfg.Metrics.TuplesIn.Inc()
		m.cfg.Metrics.MemBytes.Set(int64(m.buf.MemUsage()))
	}
	return m.produceAll(completes, 0), nil
}

// OnWatermark implements Manager.
func (m *ExactManager) OnWatermark(wm int64) ([]Result, error) {
	t0 := m.now()
	completes, err := m.buf.OnWatermark(wm)
	if err != nil {
		return nil, err
	}
	if len(completes) == 0 {
		return nil, nil
	}
	scanShare := m.now().Sub(t0) / time.Duration(len(completes))
	if m.cfg.Metrics != nil {
		m.cfg.Metrics.MemBytes.Set(int64(m.buf.MemUsage()))
	}
	return m.produceAll(completes, scanShare), nil
}

func (m *ExactManager) produceAll(completes []window.Complete, scanShare time.Duration) []Result {
	if len(completes) == 0 {
		return nil
	}
	out := make([]Result, 0, len(completes))
	for _, c := range completes {
		t0 := m.now()
		res := Result{
			WindowID: c.ID, Start: c.Start, End: c.End,
			N: int64(len(c.Tuples)), SampleN: len(c.Tuples),
			Mode:             ModeExact,
			FetchedFromStore: c.FetchedFromStore,
		}
		if m.cfg.KeyBy != nil {
			keys := make([]string, len(c.Tuples))
			vals := make([]float64, len(c.Tuples))
			for i, t := range c.Tuples {
				keys[i] = m.cfg.KeyBy(t)
				vals[i] = m.cfg.Value(t)
			}
			res.Groups = agg.ComputeGrouped(keys, vals, m.cfg.Agg)
		} else {
			vals := make([]float64, len(c.Tuples))
			for i, t := range c.Tuples {
				vals[i] = m.cfg.Value(t)
			}
			res.Scalar = m.cfg.Agg.Compute(vals)
		}
		if m.cfg.Metrics != nil {
			m.cfg.Metrics.ProcTime.ObserveDuration(m.now().Sub(t0) + scanShare)
			m.cfg.Metrics.WindowsTotal.Inc()
			m.cfg.Metrics.WindowsExact.Inc()
			m.cfg.Metrics.TuplesProcessedFull.Add(int64(len(c.Tuples)))
			if res.FetchedFromStore {
				m.cfg.Metrics.WindowsSpilled.Inc()
			}
		}
		out = append(out, res)
	}
	return out
}

// MemUsage implements Manager.
func (m *ExactManager) MemUsage() int { return m.buf.MemUsage() }

// SetBudget is the adaptive-controller resize seam, uniform across
// managers. The exact baseline holds no sample — there is nothing for a
// budget to size — so the call is a documented no-op; the engine never
// attaches a controller cell to a baseline backend.
func (m *ExactManager) SetBudget(int) {}

// IncrementalManager is the Inc-Storm baseline of Fig. 8a: the engine
// modified to maintain a non-holistic scalar aggregate incrementally at
// tuple arrival, producing each window result with O(1) work at
// watermark arrival ("this is the optimal way for a mean"). It rejects
// holistic and grouped operations, exactly the limitation the paper
// ascribes to incremental techniques (fails R4).
type IncrementalManager struct {
	//lint:allow snapshotcover config handle; only telemetry under it mutates
	cfg Config

	wins     map[window.ID]*agg.Incremental
	started  bool
	fired    bool // some window has actually closed; lateness is defined from here on
	nextFire window.ID
	seq      int64
	maxPos   int64
	late     int64
	now      func() time.Time
}

// NewIncrementalManager returns the incremental baseline for cfg.
func NewIncrementalManager(cfg Config) (*IncrementalManager, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.KeyBy != nil {
		return nil, fmt.Errorf("core: incremental baseline does not support grouped operations")
	}
	if cfg.Agg.Holistic() {
		return nil, fmt.Errorf("core: %s cannot be processed incrementally", cfg.Agg)
	}
	return &IncrementalManager{cfg: cfg, wins: make(map[window.ID]*agg.Incremental), now: cfg.clock()}, nil
}

// OnTuple implements Manager.
func (m *IncrementalManager) OnTuple(t tuple.Tuple) ([]Result, error) {
	pos := t.Ts
	if m.cfg.Spec.Domain == window.CountDomain {
		pos = m.seq
	}
	m.seq++
	if pos > m.maxPos || m.seq == 1 {
		m.maxPos = pos
	}
	lo, hi := m.cfg.Spec.Assign(pos)
	if !m.started {
		m.started = true
		m.nextFire = lo
	} else if lo < m.nextFire && !m.fired {
		// Pre-first-fire the anchor is only the first tuple's guess;
		// multi-sender reordering at stream start must lower it, not
		// drop the tuple (see ScalarManager.ingest).
		m.nextFire = lo
	}
	if hi < m.nextFire {
		m.late++
		return nil, nil
	}
	if lo < m.nextFire {
		lo = m.nextFire
	}
	v := m.cfg.Value(t)
	for id := lo; id <= hi; id++ {
		inc, ok := m.wins[id]
		if !ok {
			inc, _ = agg.NewIncremental(m.cfg.Agg)
			m.wins[id] = inc
		}
		inc.Add(v)
	}
	if m.cfg.Metrics != nil {
		m.cfg.Metrics.TuplesIn.Inc()
		m.cfg.Metrics.MemBytes.Set(int64(m.MemUsage()))
	}
	if m.cfg.Spec.Domain == window.CountDomain {
		return m.fire(m.seq), nil
	}
	return nil, nil
}

// OnWatermark implements Manager.
func (m *IncrementalManager) OnWatermark(wm int64) ([]Result, error) {
	if m.cfg.Spec.Domain == window.CountDomain {
		return nil, nil
	}
	return m.fire(wm), nil
}

func (m *IncrementalManager) fire(wm int64) []Result {
	if !m.started {
		return nil
	}
	last := m.cfg.Spec.FirstCompleteBy(wm)
	if _, hiData := m.cfg.Spec.Assign(m.maxPos); last > hiData {
		last = hiData
	}
	if last < m.nextFire {
		return nil
	}
	m.fired = true // windows at and below last are closed for good
	var out []Result
	for id := m.nextFire; id <= last; id++ {
		inc, ok := m.wins[id]
		if !ok {
			continue
		}
		t0 := m.now()
		start, end := m.cfg.Spec.Bounds(id)
		res := Result{
			WindowID: id, Start: start, End: end,
			N: inc.Count(), SampleN: int(inc.Count()),
			Mode:   ModeIncremental,
			Scalar: inc.Result(),
		}
		delete(m.wins, id)
		if m.cfg.Metrics != nil {
			m.cfg.Metrics.ProcTime.ObserveDuration(m.now().Sub(t0))
			m.cfg.Metrics.WindowsTotal.Inc()
			m.cfg.Metrics.WindowsAccelerated.Inc()
		}
		out = append(out, res)
	}
	m.nextFire = last + 1
	return out
}

// MemUsage implements Manager: one accumulator per active window.
func (m *IncrementalManager) MemUsage() int { return len(m.wins) * 56 }

// SetBudget is the adaptive-controller resize seam, uniform across
// managers. The incremental baseline keeps O(1) state per window
// regardless of b, so the call is a documented no-op; the engine never
// attaches a controller cell to a baseline backend.
func (m *IncrementalManager) SetBudget(int) {}

var (
	_ Manager = (*ExactManager)(nil)
	_ Manager = (*IncrementalManager)(nil)
)
