package core

import (
	"testing"

	"spear/internal/agg"
	"spear/internal/tuple"
)

// FuzzManagerRestore throws arbitrary bytes at every manager's
// RestoreState. Snapshots come back from a store a crash may have
// mangled, so decoding must reject damage with an error — never panic,
// never accept bytes that then break OnTuple/OnWatermark.
func FuzzManagerRestore(f *testing.F) {
	mkManagers := func() []Manager {
		scalar, err := NewScalarManager(mkCfg(agg.Func{Op: agg.Mean}, 64))
		if err != nil {
			panic(err)
		}
		gcfg := mkCfg(agg.Func{Op: agg.Mean}, 64)
		gcfg.KeyBy = tuple.FieldString(1)
		grouped, err := NewGroupedManager(gcfg)
		if err != nil {
			panic(err)
		}
		exact, err := NewExactManager(mkCfg(agg.Func{Op: agg.Mean}, 64), 0)
		if err != nil {
			panic(err)
		}
		inc, err := NewIncrementalManager(mkCfg(agg.Func{Op: agg.Sum}, 64))
		if err != nil {
			panic(err)
		}
		return []Manager{scalar, grouped, exact, inc}
	}

	// Seed with each manager's own canonical snapshot, empty and after
	// absorbing a little stream.
	for _, m := range mkManagers() {
		s := m.(interface{ SnapshotState() ([]byte, error) })
		b, err := s.SnapshotState()
		if err != nil {
			panic(err)
		}
		f.Add(b)
		for i := 0; i < 250; i++ {
			_, _ = m.OnTuple(tuple.New(int64(i), tuple.Float(float64(i%9)), tuple.String_("g")))
		}
		if b, err = s.SnapshotState(); err != nil {
			panic(err)
		}
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{0x51})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, b []byte) {
		for _, m := range mkManagers() {
			r := m.(interface{ RestoreState([]byte) error })
			if err := r.RestoreState(b); err != nil {
				continue
			}
			// Accepted bytes must leave a usable manager.
			for i := 0; i < 50; i++ {
				if _, err := m.OnTuple(tuple.New(int64(1e6+i*10), tuple.Float(1), tuple.String_("g"))); err != nil {
					t.Fatalf("%T broken after accepted restore: %v", m, err)
				}
			}
			if _, err := m.OnWatermark(2e6); err != nil {
				t.Fatalf("%T watermark broken after accepted restore: %v", m, err)
			}
		}
	})
}
