package spear

import (
	"math"
	"testing"
	"time"

	"spear/internal/agg"
	"spear/internal/core"
	"spear/internal/stats"
)

func TestCustomAggEndToEnd(t *testing.T) {
	var in []Tuple
	for i := 0; i < 20000; i++ {
		v := 100 + float64(i%41) - 20 // uniform-ish around 100
		if i%500 == 0 {
			v = 10_000 // outliers the trimmed mean must shrug off
		}
		in = append(in, NewTuple(int64(i%1000), Float(v)))
	}
	est := core.TrimmedMeanEstimator(0.05)
	sink := &sinkBuf{}
	sum, err := NewQuery("robust").
		Source(FromSlice(in)).
		TumblingWindow(1000*time.Nanosecond).
		CustomAgg(agg.TrimmedMean(0.05), func(t Tuple) float64 { return t.Vals[0].AsFloat() }, est).
		BudgetTuples(2000).
		Error(0.10, 0.95).
		Run(sink.add)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Windows != 1 {
		t.Fatalf("windows = %d", sum.Windows)
	}
	r := sink.res[0]
	if r.Mode != core.ModeSampled {
		t.Fatalf("Mode = %v", r.Mode)
	}
	// The outliers are 0.2% of tuples; a 5% trim removes them, so the
	// result must sit near 100, not near the contaminated mean (~120).
	if r.Scalar < 90 || r.Scalar > 110 {
		t.Errorf("trimmed mean = %v, want ≈100", r.Scalar)
	}
}

func TestCustomAggValidation(t *testing.T) {
	src := FromSlice(nil)
	sink := func(int, Result) {}
	val := func(t Tuple) float64 { return 0 }
	est := func(core.ScalarState) (float64, bool) { return 0, true }

	if _, err := NewQuery("q").Source(src).TumblingWindow(1).
		CustomAgg(agg.TrimmedMean(0.1), val, nil).Run(sink); err == nil {
		t.Error("custom agg without estimator accepted")
	}
	if _, err := NewQuery("q").Source(src).TumblingWindow(1).
		CustomAgg(agg.TrimmedMean(0.1), nil, est).Run(sink); err == nil {
		t.Error("custom agg without value accepted")
	}
	if _, err := NewQuery("q").Source(src).TumblingWindow(1).
		Mean(val).CustomAgg(agg.Range(), val, est).Run(sink); err == nil {
		t.Error("double aggregate accepted")
	}
	// Grouped custom ops are rejected at Run.
	if _, err := NewQuery("q").Source(FromSlice([]Tuple{NewTuple(1, Str("k"), Float(1))})).
		TumblingWindow(10).
		GroupBy(func(t Tuple) string { return t.Vals[0].AsString() }).
		CustomAgg(agg.Range(), val, est).Run(sink); err == nil {
		t.Error("grouped custom op accepted")
	}
}

func TestAdaptiveBudgetEndToEnd(t *testing.T) {
	var in []Tuple
	rngState := int64(1)
	next := func() float64 { // cheap LCG noise, high variance
		rngState = rngState*6364136223846793005 + 1442695040888963407
		return 100 + float64(rngState%97)
	}
	for w := 0; w < 30; w++ {
		for i := 0; i < 1500; i++ {
			in = append(in, NewTuple(int64(w*1000+i%1000), Float(next())))
		}
	}
	sink := &sinkBuf{}
	sum, err := NewQuery("adaptive").
		Source(FromSlice(in)).
		TumblingWindow(1000*time.Nanosecond).
		Mean(func(t Tuple) float64 { return t.Vals[0].AsFloat() }).
		DisableIncremental().
		BudgetTuples(10).
		AdaptiveBudget(10, 5000).
		Error(0.05, 0.95).
		Run(sink.add)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Windows != 30 {
		t.Fatalf("windows = %d", sum.Windows)
	}
	res := sink.sorted()
	if res[0].Mode != core.ModeExact {
		t.Errorf("first window should fall back, got %v", res[0].Mode)
	}
	tail := res[len(res)-5:]
	for _, r := range tail {
		if r.Mode != core.ModeSampled {
			t.Errorf("tail window [%d,%d) not accelerated: %v", r.Start, r.End, r.Mode)
		}
	}
	if _, err := NewQuery("bad").AdaptiveBudget(0, 5).Source(FromSlice(nil)).
		TumblingWindow(1).Mean(func(Tuple) float64 { return 0 }).
		Run(func(int, Result) {}); err == nil {
		t.Error("invalid adaptive bounds accepted")
	}
}

// MeanLikeEstimate mirrors core.DefaultScalarEstimate usage from user
// code, sanity-checking the exported hooks.
func TestDefaultEstimateHooks(t *testing.T) {
	var w stats.Welford
	for i := 0; i < 100; i++ {
		w.Add(float64(i))
	}
	s := core.ScalarState{
		Sample: make([]float64, 100), N: 10000, Stats: &w,
		Epsilon: 0.1, Confidence: 0.95, Agg: agg.Func{Op: agg.Mean},
	}
	e1, ok1 := core.DefaultScalarEstimate(s)
	e2, ok2 := core.MeanLikeEstimator(s)
	if ok1 != ok2 || math.Abs(e1-e2) > 1e-12 {
		t.Errorf("DefaultScalarEstimate (%v,%v) != MeanLikeEstimator (%v,%v)", e1, ok1, e2, ok2)
	}
}
