package spear

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"spear/internal/core"
	"spear/internal/metrics"
	"spear/internal/stats"
	"spear/internal/storage"
)

// TestAdaptiveBudgetIdentity pins the controller's zero-cost-when-idle
// contract at the public API: a query whose controller can never act —
// an SLO far above any reachable lag, with AdaptiveBudget pinning
// Min = Max to the starting budget — produces exactly the results of
// the same query without LatencySLO: values bit-for-bit AND the
// accelerate/exact Mode decision of every window.
func TestAdaptiveBudgetIdentity(t *testing.T) {
	sec := int64(time.Second)

	t.Run("scalar mixed modes", func(t *testing.T) {
		// Window sizes straddle the budget so the run mixes sampled and
		// exact-fallback decisions; both must survive the controller.
		r := rand.New(rand.NewSource(5))
		var in []Tuple
		for w := 0; w < 8; w++ {
			n := 50
			if w%2 == 1 {
				n = 600
			}
			for i := 0; i < n; i++ {
				in = append(in, NewTuple((int64(w*100)+int64(i)%100)*sec, Float(r.NormFloat64()*50)))
			}
		}
		build := func() *Query {
			return NewQuery("adidentity").
				Source(FromSlice(in)).
				TumblingWindow(100 * time.Second).
				Median(func(t Tuple) float64 { return t.Vals[0].AsFloat() }).
				BudgetTuples(80).Error(0.10, 0.95).Seed(4)
		}
		plain := collectRun(t, build())
		inert := collectRun(t, build().LatencySLO(time.Hour).AdaptiveBudget(80, 80))
		sameWres(t, plain, inert)
	})

	t.Run("grouped", func(t *testing.T) {
		r := rand.New(rand.NewSource(11))
		groups := []string{"a", "b", "c", "d"}
		var in []Tuple
		for i := 0; i < 6000; i++ {
			in = append(in, NewTuple(int64(i/10)*sec,
				Str(groups[i%len(groups)]), Float(100+r.NormFloat64()*10)))
		}
		build := func() *Query {
			return NewQuery("adgrouped").
				Source(FromSlice(in)).
				TumblingWindow(100*time.Second).
				GroupBy(func(t Tuple) string { return t.Vals[0].AsString() }).
				KnownGroups(len(groups)).
				Mean(func(t Tuple) float64 { return t.Vals[1].AsFloat() }).
				BudgetTuples(120).Error(0.10, 0.95).Seed(6)
		}
		plain := collectRun(t, build())
		inert := collectRun(t, build().LatencySLO(time.Hour).AdaptiveBudget(120, 120))
		sameWres(t, plain, inert)
	})

	t.Run("crash and recover", func(t *testing.T) {
		// The inert controller must also leave checkpoint recovery
		// untouched: restore rewrites the budget cells, and an idle
		// controller must not disturb the rewound state. Union of the
		// two checkpointed legs == the plain uninterrupted run.
		const n, stopAt = 2000, 1100
		mk := func(lo, hi int) []Tuple {
			var ts []Tuple
			for i := lo; i < hi; i++ {
				ts = append(ts, NewTuple(int64(i)*sec, Float(float64(i%50))))
			}
			return ts
		}
		build := func(src Source, store storage.SpillStore) *Query {
			return NewQuery("adckpt").
				Source(src).
				TumblingWindow(100 * time.Second).
				Mean(func(t Tuple) float64 { return t.Vals[0].AsFloat() }).
				BudgetTuples(64).Error(0.05, 0.95).Seed(7).
				QueueSize(32).
				SpillStore(store)
		}
		ref := &sinkBuf{}
		if _, err := build(FromSlice(mk(0, n)), storage.NewMemStore()).Run(ref.add); err != nil {
			t.Fatal(err)
		}

		store := storage.NewMemStore()
		leg1 := &sinkBuf{}
		if _, err := build(FromSlice(mk(0, stopAt)), store).
			LatencySLO(time.Hour).AdaptiveBudget(64, 64).
			CheckpointEvery(400, 0).
			Run(leg1.add); err != nil {
			t.Fatal(err)
		}
		leg2 := &sinkBuf{}
		if _, err := build(FromSlice(mk(0, n)), store).
			LatencySLO(time.Hour).AdaptiveBudget(64, 64).
			CheckpointEvery(400, 0).
			Recover().
			Run(leg2.add); err != nil {
			t.Fatal(err)
		}

		merged := map[int64]Result{}
		for _, r := range append(leg1.sorted(), leg2.sorted()...) {
			if prev, ok := merged[r.Start]; ok {
				if math.Float64bits(prev.Scalar) != math.Float64bits(r.Scalar) || prev.Mode != r.Mode {
					t.Fatalf("window @%d: legs disagree (%v/%v vs %v/%v)",
						r.Start, prev.Scalar, prev.Mode, r.Scalar, r.Mode)
				}
				continue
			}
			merged[r.Start] = r
		}
		refRes := ref.sorted()
		if len(merged) != len(refRes) {
			t.Fatalf("union has %d windows, reference %d", len(merged), len(refRes))
		}
		for _, want := range refRes {
			got, ok := merged[want.Start]
			if !ok {
				t.Fatalf("window @%d missing from checkpointed union", want.Start)
			}
			if math.Float64bits(got.Scalar) != math.Float64bits(want.Scalar) || got.Mode != want.Mode {
				t.Fatalf("window @%d: %v/%v, want %v/%v",
					want.Start, got.Scalar, got.Mode, want.Scalar, want.Mode)
			}
		}
	})
}

// pacedSource emits the slice with a real-time delay every `every`
// tuples, stretching the run across reporter ticks so the controller
// actually observes it.
func pacedSource(in []Tuple, every int, d time.Duration) Source {
	i := 0
	return FromFunc(func() (Tuple, bool) {
		if i >= len(in) {
			return Tuple{}, false
		}
		if every > 0 && i%every == 0 {
			time.Sleep(d)
		}
		t := in[i]
		i++
		return t, true
	})
}

// TestAdaptiveShedReportsContract drives the controller into load
// shedding (an unreachable SLO with the budget pinned at the floor, so
// the first decision escalates straight to shedding) on a stream whose
// variance defeats the bound at budget b. Without shedding every such
// window falls back to the exact archive; with shedding engaged the
// tainted windows must come back as ModeShed — the sample answer with
// the realized bound reported and ContractMet() false — and the
// reported bound must cover the realized error against an exact
// reference. The sample content is seed-deterministic (shedding only
// skips archive writes), so coverage is checked per shed window.
func TestAdaptiveShedReportsContract(t *testing.T) {
	sec := int64(time.Second)
	r := rand.New(rand.NewSource(3))
	const perWin, wins = 3000, 3
	var in []Tuple
	exact := make([]float64, wins)
	for w := 0; w < wins; w++ {
		var sum float64
		for i := 0; i < perWin; i++ {
			v := math.Abs(r.NormFloat64()) * 1e6 * r.Float64()
			sum += v
			in = append(in, NewTuple((int64(w*100)+int64(i*100/perWin))*sec, Float(v)))
		}
		exact[w] = sum / perWin
	}

	reg := metrics.NewRegistry()
	var mu sync.Mutex
	var out []Result
	_, err := NewQuery("adshed").
		Source(pacedSource(in, 10, time.Millisecond)).
		TumblingWindow(100*time.Second).
		Mean(func(t Tuple) float64 { return t.Vals[0].AsFloat() }).
		BudgetTuples(64).Error(0.10, 0.95).Seed(9).
		DisableIncremental().
		LatencySLO(time.Millisecond).AdaptiveBudget(64, 64).
		ObserveEvery(2*time.Millisecond).
		MetricsInto(reg).
		Run(func(_ int, res Result) {
			mu.Lock()
			out = append(out, res)
			mu.Unlock()
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != wins {
		t.Fatalf("%d windows, want %d", len(out), wins)
	}

	var sheds int
	for _, res := range out {
		w := int(res.Start / (100 * sec))
		if res.Budget != 64 || res.Epsilon != 0.10 || res.Confidence != 0.95 {
			t.Fatalf("window %d: contract fields (ε=%v δ=%v b=%d) not carried",
				w, res.Epsilon, res.Confidence, res.Budget)
		}
		switch res.Mode {
		case core.ModeShed:
			sheds++
			if res.ContractMet() {
				t.Fatalf("window %d: ModeShed with ContractMet() true", w)
			}
			if !(res.EstError > 0.10) {
				t.Fatalf("window %d: shed EstError %v not above ε", w, res.EstError)
			}
			if res.FetchedFromStore {
				t.Fatalf("window %d: shed window touched S", w)
			}
			if rel := stats.RelativeError(res.Scalar, exact[w]); rel > res.EstError*1.2 {
				t.Fatalf("window %d: realized error %.3f outside the reported bound %.3f",
					w, rel, res.EstError)
			}
		case core.ModeExact:
			// Produced before shedding engaged: the archive fallback.
			if !res.ContractMet() {
				t.Fatalf("window %d: exact result with ContractMet() false", w)
			}
			if rel := stats.RelativeError(res.Scalar, exact[w]); rel > 1e-9 {
				t.Fatalf("window %d: exact mode but error %.6f", w, rel)
			}
		default:
			t.Fatalf("window %d: unexpected mode %v", w, res.Mode)
		}
	}
	if sheds == 0 {
		t.Fatal("controller never shed: no window surfaced the degraded contract")
	}
	var tuplesShed, windowsShed int64
	for _, w := range reg.Workers() {
		tuplesShed += w.TuplesShed.Load()
		windowsShed += w.WindowsShed.Load()
	}
	if tuplesShed == 0 || windowsShed == 0 {
		t.Fatalf("shed telemetry: tuples=%d windows=%d, want both positive", tuplesShed, windowsShed)
	}
}
