// Package spear is a stream processing engine that expedites stateful
// window operations by trading accuracy for performance under explicit
// user guarantees, reproducing the SPEAr system (Katsipoulakis,
// Labrinidis, Chrysanthis — ICDE 2020).
//
// A continuous query is built fluently, mirroring the paper's Fig. 5:
//
//	res, err := spear.NewQuery("rides").
//		Source(spear.FromSlice(tuples)).
//		SlidingWindow(15*time.Minute, 5*time.Minute).
//		Percentile(fare, 0.95).
//		BudgetBytes(1 << 20).
//		Error(0.10, 0.95).
//		Run(func(worker int, r spear.Result) { ... })
//
// Each stateful worker keeps, within the budget b, an online sample and
// statistics of every active window. At watermark arrival it estimates
// the accuracy ε̂_w achievable from the budget; if ε̂_w ≤ ε the window is
// answered from the sample in O(b), otherwise it is processed exactly —
// the same cost as a conventional engine. Scalar non-holistic
// aggregates additionally use an incremental exact path.
package spear

import (
	"errors"
	"fmt"
	"io"
	"time"

	"spear/internal/agg"
	"spear/internal/checkpoint"
	"spear/internal/control"
	"spear/internal/core"
	"spear/internal/dataset"
	"spear/internal/metrics"
	"spear/internal/obs"
	"spear/internal/sample"
	"spear/internal/spe"
	"spear/internal/storage"
	"spear/internal/transport"
	"spear/internal/tuple"
	"spear/internal/window"
)

// Tuple is one stream record: an event timestamp (nanoseconds) plus
// typed field values.
type Tuple = tuple.Tuple

// Value is one typed tuple field.
type Value = tuple.Value

// Result is one window's output, carrying the production mode (exact,
// sampled, incremental), the estimated error, and the scalar or
// per-group values.
type Result = core.Result

// Summary aggregates a run's telemetry: window counts, acceleration
// fraction, pooled mean and 95th-percentile window processing times,
// and mean per-worker peak memory.
type Summary = metrics.Summary

// Source produces the input stream; Next returns ok=false at the end.
type Source = spe.Spout

// Convenience re-exports for building tuples and sources.
var (
	// NewTuple builds a tuple from a timestamp and values.
	NewTuple = tuple.New
	// Int wraps an int64 field value.
	Int = tuple.Int
	// Float wraps a float64 field value.
	Float = tuple.Float
	// Str wraps a string field value.
	Str = tuple.String_
	// Bool wraps a bool field value.
	Bool = tuple.Bool
)

// FromSlice returns a Source replaying ts in order.
func FromSlice(ts []Tuple) Source { return spe.NewSliceSpout(ts) }

// FromFunc adapts a generator function to a Source.
func FromFunc(f func() (Tuple, bool)) Source { return spe.FuncSpout(f) }

// Merge combines several event-time-ordered sources into one (a CQ with
// multiple input streams). Each input must be non-decreasing in Ts.
func Merge(sources ...Source) Source { return spe.MergeSpouts(sources...) }

// Schema describes a stream's fields; Field is one column.
type (
	Schema = tuple.Schema
	Field  = tuple.Field
)

// Field kinds for schemas.
const (
	KindInt    = tuple.KindInt
	KindFloat  = tuple.KindFloat
	KindString = tuple.KindString
	KindBool   = tuple.KindBool
)

// NewSchema builds a schema from fields (names must be unique).
var NewSchema = tuple.NewSchema

// FromCSV returns a Source replaying CSV data whose first column is a
// nanosecond timestamp named "ts" and whose remaining columns match
// schema — the format cmd/spear-gen writes. Parse errors end the
// stream; call the returned error function after the run to check for
// one.
func FromCSV(r io.Reader, name string, schema *Schema) (Source, func() error, error) {
	cs, err := dataset.ReadCSV(r, name, schema)
	if err != nil {
		return nil, nil, err
	}
	return FromFunc(cs.Stream.Next), cs.Err, nil
}

// Backend selects the stateful processing strategy, mainly for
// benchmarking SPEAr against its baselines.
type Backend uint8

// Available backends.
const (
	// BackendSPEAr is the approximate engine with accuracy guarantees
	// (the default).
	BackendSPEAr Backend = iota
	// BackendExact is the conventional single-buffer engine ("Storm"
	// in the paper's figures): every window processed in full.
	BackendExact
	// BackendIncremental maintains non-holistic scalar aggregates at
	// tuple arrival ("Inc-Storm"): exact, O(1) per watermark, but
	// limited to non-holistic scalar operations.
	BackendIncremental
)

// String names the backend.
func (b Backend) String() string {
	switch b {
	case BackendExact:
		return "exact"
	case BackendIncremental:
		return "incremental"
	default:
		return "spear"
	}
}

// Query is a continuous query under construction. Methods return the
// query for chaining; configuration errors accumulate and surface at
// Run.
type Query struct {
	name string
	errs []error

	source   Source
	maps     []spe.MapFunc
	spec     window.Spec
	haveSpec bool

	value   tuple.Extractor
	keyBy   tuple.KeyExtractor
	aggFunc agg.Func
	custom  *agg.CustomFunc
	haveAgg bool

	epsilon      float64
	confidence   float64
	budgetTuples int
	knownGroups  int

	parallelism int
	backend     Backend
	seed        int64
	queueSize   int
	batchSize   int

	colOn         bool
	colValueField int
	colKeyField   int
	wmPeriod    time.Duration
	wmLag       time.Duration

	ckptTuples   int64
	ckptInterval time.Duration
	ckptRecover  bool
	ckptMetrics  *metrics.CheckpointMetrics

	store              storage.SpillStore
	spillWorkers       int
	spillAhead         int
	spillCompression   int
	spillQueueBytes    int64
	spillCacheBytes    int64
	budgetPolicy       core.BudgetPolicy
	latencySLO         time.Duration
	controlCells       []*control.Cell
	disableIncremental bool
	scalarEst          core.ScalarEstimator
	groupedEst         core.GroupedEstimator
	registry           *metrics.Registry
	exactBufferBytes   int

	obsAddr    string
	obsEvery   time.Duration
	obsInto    *obs.Instruments
	traceEvery int
	traceCap   int
	obsStarted func(addr string)

	// Distributed runtime (Distribute / ServeShard).
	workers           []string
	runID             uint64
	transportDialer   transport.Dialer
	transportRedials  int
	transportBackoff  time.Duration
	transportBackMax  time.Duration
	transportPeerWait time.Duration
	transportWindow   int
}

// NewQuery starts a query named name (used in telemetry and errors).
func NewQuery(name string) *Query {
	return &Query{
		name:        name,
		epsilon:     0.10,
		confidence:  0.95,
		parallelism: 1,
		seed:        1,
	}
}

func (q *Query) errf(format string, args ...any) *Query {
	q.errs = append(q.errs, fmt.Errorf("spear: %s: "+format, append([]any{q.name}, args...)...))
	return q
}

// Source sets the input stream.
func (q *Query) Source(s Source) *Query {
	q.source = s
	return q
}

// Map appends a stateless transformation stage; returning ok=false
// drops the tuple (filter).
func (q *Query) Map(fn func(Tuple) (Tuple, bool)) *Query {
	if fn == nil {
		return q.errf("nil Map function")
	}
	q.maps = append(q.maps, spe.MapFunc(fn))
	return q
}

// SlidingWindow sets a time-based sliding window over event time.
func (q *Query) SlidingWindow(rng, slide time.Duration) *Query {
	q.spec = window.Sliding(rng, slide)
	q.haveSpec = true
	return q
}

// TumblingWindow sets a time-based tumbling window.
func (q *Query) TumblingWindow(rng time.Duration) *Query {
	q.spec = window.Tumbling(rng)
	q.haveSpec = true
	return q
}

// CountSlidingWindow sets a count-based sliding window.
func (q *Query) CountSlidingWindow(rng, slide int64) *Query {
	q.spec = window.CountSliding(rng, slide)
	q.haveSpec = true
	return q
}

// CountTumblingWindow sets a count-based tumbling window.
func (q *Query) CountTumblingWindow(rng int64) *Query {
	q.spec = window.CountTumbling(rng)
	q.haveSpec = true
	return q
}

// GroupBy makes the stateful operation grouped: one result per distinct
// key per window, with tuples routed to workers by key hash.
func (q *Query) GroupBy(key func(Tuple) string) *Query {
	if key == nil {
		return q.errf("nil GroupBy key")
	}
	q.keyBy = key
	return q
}

// KnownGroups declares the number of distinct groups at submission
// time, letting SPEAr build the stratified sample at tuple arrival
// (§4.1) instead of during the watermark scan.
func (q *Query) KnownGroups(n int) *Query {
	if n <= 0 {
		return q.errf("KnownGroups %d must be positive", n)
	}
	q.knownGroups = n
	return q
}

func (q *Query) setAgg(f agg.Func, value func(Tuple) float64) *Query {
	if q.haveAgg {
		return q.errf("aggregate already set to %s", q.aggFunc)
	}
	if value == nil {
		return q.errf("nil value extractor for %s", f)
	}
	q.aggFunc = f
	q.value = value
	q.haveAgg = true
	return q
}

// Count counts tuples per window (per group if grouped).
func (q *Query) Count() *Query {
	return q.setAgg(agg.Func{Op: agg.Count}, func(Tuple) float64 { return 0 })
}

// Sum aggregates the sum of value per window.
func (q *Query) Sum(value func(Tuple) float64) *Query {
	return q.setAgg(agg.Func{Op: agg.Sum}, value)
}

// Mean aggregates the arithmetic mean of value per window.
func (q *Query) Mean(value func(Tuple) float64) *Query {
	return q.setAgg(agg.Func{Op: agg.Mean}, value)
}

// Min aggregates the minimum of value per window.
func (q *Query) Min(value func(Tuple) float64) *Query {
	return q.setAgg(agg.Func{Op: agg.Min}, value)
}

// Max aggregates the maximum of value per window.
func (q *Query) Max(value func(Tuple) float64) *Query {
	return q.setAgg(agg.Func{Op: agg.Max}, value)
}

// Variance aggregates the unbiased sample variance of value per window.
func (q *Query) Variance(value func(Tuple) float64) *Query {
	return q.setAgg(agg.Func{Op: agg.Variance}, value)
}

// StdDev aggregates the sample standard deviation of value per window.
func (q *Query) StdDev(value func(Tuple) float64) *Query {
	return q.setAgg(agg.Func{Op: agg.StdDev}, value)
}

// Percentile aggregates the p-th percentile (p in [0,1]) of value per
// window — a holistic operation. For percentiles the error bound ε is a
// rank error, following Manku et al.
func (q *Query) Percentile(value func(Tuple) float64, p float64) *Query {
	return q.setAgg(agg.Func{Op: agg.Percentile, P: p}, value)
}

// Median aggregates the median of value per window.
func (q *Query) Median(value func(Tuple) float64) *Query {
	return q.Percentile(value, 0.5)
}

// CustomFunc is a user-defined holistic aggregate; see
// agg.CustomFunc for the contract.
type CustomFunc = agg.CustomFunc

// CustomAgg sets a user-defined holistic scalar aggregate together
// with its accuracy-estimation function — the paper's API for custom
// approximate stateful operations (§4). The estimator decides, per
// window, whether the budget's sample supports an acceptable answer;
// custom operations without a sound estimator should return ok=false
// to force exact processing.
func (q *Query) CustomAgg(fn CustomFunc, value func(Tuple) float64, est core.ScalarEstimator) *Query {
	if q.haveAgg {
		return q.errf("aggregate already set")
	}
	if value == nil {
		return q.errf("nil value extractor for %s", fn.Name)
	}
	if est == nil {
		return q.errf("custom aggregate %s requires an estimator", fn.Name)
	}
	q.custom = &fn
	q.value = value
	q.scalarEst = est
	q.haveAgg = true
	return q
}

// BudgetTuples sets the per-worker memory budget b in tuples — the
// reservoir capacity (scalar) or sample size (grouped).
func (q *Query) BudgetTuples(n int) *Query {
	if n <= 0 {
		return q.errf("budget %d must be positive", n)
	}
	q.budgetTuples = n
	return q
}

// BudgetBytes sets the budget from a byte size, assuming 8-byte values
// and reserving two slots for the window statistics, exactly as the
// paper's .budget(1MB) accounts it.
func (q *Query) BudgetBytes(bytes int) *Query {
	if bytes <= 0 {
		return q.errf("budget %dB must be positive", bytes)
	}
	q.budgetTuples = core.BudgetBytes(bytes, 8)
	return q
}

// AdaptiveBudget lets the engine adjust the budget online between
// windows (the paper's future-work extension): estimation failures grow
// it, comfortable accelerations shrink it, within [min, max]. The
// starting value is BudgetTuples (or the default).
func (q *Query) AdaptiveBudget(min, max int) *Query {
	if min < 1 || max < min {
		return q.errf("adaptive budget bounds [%d, %d] invalid", min, max)
	}
	q.budgetPolicy = &core.AIMDBudget{Min: min, Max: max}
	return q
}

// LatencySLO enables the adaptive accuracy controller: a feedback loop
// from the live observability plane to every worker's sample budget.
// While the worst worker's watermark lag exceeds d (or an internal
// queue nears saturation) the controller tightens budgets toward a
// floor — shrinking reservoirs online, which loosens ε̂_w and steers
// more windows onto the O(b) sampled path — and past the floor it sheds
// archive writes, trading the exact fallback for sample-only answers
// whose realized bound is reported per window (Result.ContractMet
// reports false for those). With headroom it recovers in reverse
// order. AdaptiveBudget(min, max) supplies the budget bounds; without
// it they default to [BudgetTuples/16, BudgetTuples].
//
// Every Result carries the contract it was held to (Epsilon,
// Confidence) and the budget in force (Budget), so downstream consumers
// always see the error/confidence context of each window even as the
// controller moves the budget. The controller requires the in-process
// runtime; it does not compose with Distribute.
func (q *Query) LatencySLO(d time.Duration) *Query {
	if d <= 0 {
		return q.errf("latency SLO %v must be positive", d)
	}
	q.latencySLO = d
	return q
}

// Error sets the accuracy specification: an accelerated result deviates
// from the exact one by at most epsilon, for a confidence fraction of
// windows — the paper's .error(10%, 95%).
func (q *Query) Error(epsilon, confidence float64) *Query {
	q.epsilon = epsilon
	q.confidence = confidence
	return q
}

// Parallelism sets the number of stateful workers (the paper's "nodes").
func (q *Query) Parallelism(n int) *Query {
	if n <= 0 {
		return q.errf("parallelism %d must be positive", n)
	}
	q.parallelism = n
	return q
}

// WithBackend selects SPEAr or a baseline engine.
func (q *Query) WithBackend(b Backend) *Query {
	q.backend = b
	return q
}

// Seed fixes the sampling seed for reproducible runs.
func (q *Query) Seed(s int64) *Query {
	q.seed = s
	return q
}

// QueueSize bounds worker input queues, counted in batches
// (back-pressure); zero keeps the default of 1024.
func (q *Query) QueueSize(n int) *Query {
	q.queueSize = n
	return q
}

// Columnar opts the query into the columnar execution fast lane. The
// windowed workers convert each micro-batch into typed column batches
// (raw []float64 value columns, dictionary-coded string key columns)
// and run tight-loop aggregation kernels over them; Map stages — when
// present without checkpointing or Distribute — are additionally fused
// into a single per-batch kernel driven by the source, eliminating the
// per-stage channel hops.
//
// valueField declares the 0-based tuple field the aggregate's value
// function reads (it must hold the Float or Int value the extractor
// returns); for grouped queries, keyField declares the string field
// GroupBy keys on. The declarations are verified against the
// extractors on every batch, and any mismatch — or any batch outside
// the kernels' reach (mixed-kind columns, missing fields, count-based
// windows) — falls back to the row path automatically, so results,
// including the accelerate/exact decision of every window, are
// bit-identical to a non-columnar run. A wrong declaration costs
// speed, never correctness. Only the SPEAr backend has columnar
// kernels; baseline backends silently keep the row path.
func (q *Query) Columnar(valueField int, keyField ...int) *Query {
	if valueField < 0 {
		return q.errf("Columnar value field %d negative", valueField)
	}
	if len(keyField) > 1 {
		return q.errf("Columnar takes at most one key field")
	}
	q.colOn = true
	q.colValueField = valueField
	if len(keyField) == 1 {
		if keyField[0] < 0 {
			return q.errf("Columnar key field %d negative", keyField[0])
		}
		q.colKeyField = keyField[0]
	}
	return q
}

// BatchSize sets the micro-batch size for inter-stage channel hops:
// workers move tuples between pipeline stages in batches of up to n,
// flushing early on watermarks, barriers, and stream end, so windowing,
// watermark, and checkpoint semantics are identical to per-tuple
// transfer. 1 disables batching (per-tuple sends); zero keeps the
// default of 64. Larger batches raise throughput at the cost of up to
// n tuples of intra-pipeline latency between watermarks.
func (q *Query) BatchSize(n int) *Query {
	if n < 0 {
		return q.errf("batch size %d must be non-negative", n)
	}
	q.batchSize = n
	return q
}

// WatermarkEvery overrides the watermark period (default: the window
// slide) and lag (default: zero, for in-order sources).
func (q *Query) WatermarkEvery(period, lag time.Duration) *Query {
	q.wmPeriod = period
	q.wmLag = lag
	return q
}

// SpillStore overrides secondary storage S (default: an in-process
// store). Use storage-backed implementations for durability.
func (q *Query) SpillStore(s storage.SpillStore) *Query {
	q.store = s
	return q
}

// SpillWorkers enables the asynchronous spill I/O plane with n
// background writers: archive and spill Stores are queued (write-
// behind) and serviced off the hot path, with back-pressure once the
// in-flight byte budget fills and a durability barrier before every
// checkpoint snapshot and window fire that reads S. n = 0 (the
// default) keeps spilling synchronous. Results are identical either
// way — the plane changes when bytes move, never what they say.
func (q *Query) SpillWorkers(n int) *Query {
	if n < 0 {
		return q.errf("SpillWorkers %d negative", n)
	}
	q.spillWorkers = n
	return q
}

// SpillAhead enables watermark-driven read-ahead: on each watermark,
// the spilled panes of the next n windows are prefetched into the
// spill plane's chunk cache, so an exact fallback reads memory instead
// of paying a round-trip to S per pane. Requires SpillWorkers > 0; 0
// (the default) disables prefetching.
func (q *Query) SpillAhead(n int) *Query {
	if n < 0 {
		return q.errf("SpillAhead %d negative", n)
	}
	q.spillAhead = n
	return q
}

// SpillCompression enables the compressed chunk codec between the
// engine and the spill store: chunks are stored varint/delta-encoded
// and DEFLATE-compressed at the given level (1 = fastest … 9 =
// smallest). 0 (the default) stores chunks in the plain tuple
// encoding. Compression composes with any store and with SpillWorkers;
// with a remote store it shrinks the per-byte transfer cost.
func (q *Query) SpillCompression(level int) *Query {
	if level < 0 || level > 9 {
		return q.errf("SpillCompression level %d outside [0, 9]", level)
	}
	q.spillCompression = level
	return q
}

// SpillQueueBytes bounds the bytes the async spill plane may hold in
// queued writes before Store calls block (back-pressure). Zero selects
// the default (8 MiB). Only meaningful with SpillWorkers > 0.
func (q *Query) SpillQueueBytes(n int64) *Query {
	if n < 0 {
		return q.errf("SpillQueueBytes %d negative", n)
	}
	q.spillQueueBytes = n
	return q
}

// SpillCacheBytes bounds the spill plane's decoded-chunk LRU cache.
// Zero selects the default (32 MiB); negative disables the cache. Only
// meaningful with SpillWorkers > 0.
func (q *Query) SpillCacheBytes(n int64) *Query {
	q.spillCacheBytes = n
	return q
}

// DisableIncremental forces non-holistic scalar aggregates through the
// sample-and-estimate path (the paper's §5.5 configuration).
func (q *Query) DisableIncremental() *Query {
	q.disableIncremental = true
	return q
}

// EstimateScalarWith installs a custom accuracy-estimation function for
// scalar operations — the paper's API for user-defined approximate
// stateful operations.
func (q *Query) EstimateScalarWith(est core.ScalarEstimator) *Query {
	q.scalarEst = est
	return q
}

// EstimateGroupedWith installs a custom accuracy-estimation function
// for grouped operations.
func (q *Query) EstimateGroupedWith(est core.GroupedEstimator) *Query {
	q.groupedEst = est
	return q
}

// CheckpointMetrics bundles fault-tolerance telemetry: snapshot
// duration and size, barrier-alignment stall, and recovery time.
type CheckpointMetrics = metrics.CheckpointMetrics

// Observability re-exports: the live observability plane's registry,
// point-in-time snapshot, and sampled tuple-lifecycle trace event.
type (
	// Instruments is the live probe registry a running query publishes
	// into; obtain one via ObserveWith for in-process inspection.
	Instruments = obs.Instruments
	// Snapshot is one immutable picture of a running query (queue
	// depths, watermark lag, occupancy, spill and checkpoint traffic).
	Snapshot = obs.Snapshot
	// TraceEvent is one sampled lifecycle observation (ingest → assign
	// → fire → emit).
	TraceEvent = obs.TraceEvent
)

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4).
var WritePrometheus = obs.WritePrometheus

// NewInstruments returns an empty live-instrument registry to pass to
// ObserveWith; snapshot it with its Snapshot method at any time during
// or after the run.
var NewInstruments = obs.NewInstruments

// ObserveAddr serves live observability over HTTP at addr (host:port;
// ":0" picks a free port — read it back via OnObserveStart) for the
// duration of Run: Prometheus text at /metrics, the full JSON snapshot
// at /snapshot, the sampled lifecycle trace at /trace (when TraceEvery
// enabled it), and a liveness probe at /healthz. The server starts
// before the first tuple flows and stops after the last result reaches
// the sink.
func (q *Query) ObserveAddr(addr string) *Query {
	if addr == "" {
		return q.errf("empty observe address")
	}
	q.obsAddr = addr
	return q
}

// ObserveEvery sets the reporter's snapshot period (default 250ms).
func (q *Query) ObserveEvery(d time.Duration) *Query {
	if d <= 0 {
		return q.errf("observe period %v must be positive", d)
	}
	q.obsEvery = d
	return q
}

// ObserveWith attaches caller-owned instruments, for embedding: the
// query registers its probes into ins, and the caller snapshots it
// (ins.Snapshot) or serves it however it likes, during and after the
// run. Implies observation even without ObserveAddr.
func (q *Query) ObserveWith(ins *Instruments) *Query {
	if ins == nil {
		return q.errf("nil instruments")
	}
	q.obsInto = ins
	return q
}

// TraceEvery records the lifecycle of every nth tuple (and every nth
// window) into a bounded in-memory ring of cap events (≤ 0 selects
// 4096), served at /trace. n = 1 traces everything — fine for tests,
// expensive in production.
func (q *Query) TraceEvery(n, cap int) *Query {
	if n < 1 {
		return q.errf("trace sampling period %d must be ≥ 1", n)
	}
	q.traceEvery = n
	q.traceCap = cap
	return q
}

// OnObserveStart registers a callback invoked with the observability
// server's bound address once it is listening (useful with ":0").
func (q *Query) OnObserveStart(fn func(addr string)) *Query {
	q.obsStarted = fn
	return q
}

// CheckpointEvery enables aligned barrier snapshots: the query's state
// is checkpointed into its spill store (under "<name>/ckpt") every
// tuples source tuples when tuples > 0 and/or every interval of
// wall-clock time when interval > 0. Pair with a durable SpillStore and
// Recover to survive crashes; a failed run leaves its last completed
// checkpoint intact.
func (q *Query) CheckpointEvery(tuples int64, interval time.Duration) *Query {
	if tuples < 0 || interval < 0 {
		return q.errf("negative checkpoint period")
	}
	if tuples == 0 && interval == 0 {
		return q.errf("checkpoint needs a tuple count or an interval")
	}
	q.ckptTuples = tuples
	q.ckptInterval = interval
	return q
}

// Recover resumes the query from the newest complete checkpoint found
// in its spill store: operator state is restored, secondary storage is
// rewound to the snapshot point, and the source is replayed from the
// recorded offset (it must support seeking — FromSlice does). With no
// usable checkpoint the run starts clean, discarding any partial state
// a crashed run left behind.
func (q *Query) Recover() *Query {
	q.ckptRecover = true
	return q
}

// CheckpointMetricsInto directs checkpoint telemetry into cm.
func (q *Query) CheckpointMetricsInto(cm *CheckpointMetrics) *Query {
	q.ckptMetrics = cm
	return q
}

// MetricsInto directs telemetry into reg (one Worker per stateful
// worker thread); without it a private registry is used and returned
// via the run Summary only.
func (q *Query) MetricsInto(reg *metrics.Registry) *Query {
	q.registry = reg
	return q
}

// ExactBufferBytes bounds the exact backend's window buffer, spilling
// overflow to secondary storage (models a worker's memory budget b for
// the baseline). Zero means unbounded.
func (q *Query) ExactBufferBytes(n int) *Query {
	q.exactBufferBytes = n
	return q
}

// Run executes the query to completion, invoking sink for every window
// result, and returns the run's telemetry summary.
func (q *Query) Run(sink func(worker int, r Result)) (Summary, error) {
	if len(q.errs) > 0 {
		return Summary{}, errors.Join(q.errs...)
	}
	if q.source == nil {
		return Summary{}, fmt.Errorf("spear: %s: no source", q.name)
	}
	if !q.haveSpec {
		return Summary{}, fmt.Errorf("spear: %s: no window", q.name)
	}
	if !q.haveAgg {
		return Summary{}, fmt.Errorf("spear: %s: no aggregate", q.name)
	}
	if sink == nil {
		return Summary{}, fmt.Errorf("spear: %s: nil sink", q.name)
	}
	controllerOn := q.latencySLO > 0
	if controllerOn && len(q.workers) > 0 {
		return Summary{}, fmt.Errorf("spear: %s: LatencySLO does not compose with Distribute (the controller needs the in-process obs plane)", q.name)
	}
	store, plane, reg, err := q.assembleRuntime()
	if err != nil {
		return Summary{}, err
	}

	ckptEnabled := q.ckptTuples > 0 || q.ckptInterval > 0 || q.ckptRecover

	// Live observability: build (or adopt) the instrument registry and
	// attach every telemetry source the run will have. The adaptive
	// controller is fed from the reporter's snapshots, so enabling it
	// implies observing.
	observing := q.obsAddr != "" || q.obsInto != nil || q.traceEvery > 0 || controllerOn
	var ins *obs.Instruments
	if observing {
		ins = q.obsInto
		if ins == nil {
			ins = obs.NewInstruments()
		}
		ins.SetRegistry(reg)
		ins.SetStore(plane)
		ins.SetSpillPlane(plane)
		if q.traceEvery > 0 && ins.Trace() == nil {
			ins.EnableTrace(q.traceEvery, q.traceCap)
		}
		if ckptEnabled && q.ckptMetrics == nil {
			// Observing a checkpointed run needs the telemetry even if
			// the caller did not ask for it explicitly.
			q.ckptMetrics = &metrics.CheckpointMetrics{}
		}
		if q.ckptMetrics != nil {
			ins.SetCheckpointMetrics(q.ckptMetrics)
		}
	}

	// The controller's cells are created before the manager factory runs
	// so each worker's Config carries its mailbox; every cell starts at
	// the configured budget.
	var ctrl *control.Controller
	if controllerOn {
		q.controlCells = make([]*control.Cell, q.parallelism)
		for i := range q.controlCells {
			q.controlCells[i] = control.NewCell(q.budgetTuples)
		}
		ccfg := control.Config{SLO: q.latencySLO}
		if aimd, ok := q.budgetPolicy.(*core.AIMDBudget); ok {
			// AdaptiveBudget's bounds double as the controller's; the
			// per-window AIMD policy itself is ignored while a cell is
			// attached (one budget owner at a time).
			ccfg.Min, ccfg.Max = aimd.Min, aimd.Max
		} else {
			ccfg.Min = q.budgetTuples / 16
			if ccfg.Min < 1 {
				ccfg.Min = 1
			}
			ccfg.Max = q.budgetTuples
		}
		ctrl = control.New(ccfg, q.controlCells)
		ins.SetController(ctrl)
	} else {
		q.controlCells = nil
	}

	factory := q.managerFactory(plane, reg, ckptEnabled)

	wmPeriod := int64(q.wmPeriod)
	if wmPeriod == 0 && q.spec.Domain == window.TimeDomain {
		wmPeriod = q.spec.Slide
	}
	if q.spec.Domain == window.CountDomain {
		wmPeriod = 0 // count windows close on arrival
	}
	var hooks *spe.CheckpointHooks
	var coord *checkpoint.Coordinator
	if ckptEnabled {
		coord, err = checkpoint.NewCoordinator(checkpoint.Config{
			Store:       store,
			Namespace:   q.name + "/ckpt",
			Workers:     q.parallelism,
			EveryTuples: q.ckptTuples,
			Interval:    q.ckptInterval,
			Metrics:     q.ckptMetrics,
		})
		if err != nil {
			return Summary{}, fmt.Errorf("spear: %s: %w", q.name, err)
		}
		if q.ckptRecover {
			if _, err := coord.Recover(); err != nil {
				return Summary{}, fmt.Errorf("spear: %s: %w", q.name, err)
			}
		}
		hooks = coord.Hooks()
	}

	fieldsSeed := int64(0)
	if ckptEnabled || len(q.workers) > 0 {
		// Group→worker routing must survive restarts and must agree
		// across processes; derive a deterministic partitioner seed from
		// the query seed.
		fieldsSeed = sample.DeriveSeed(q.seed, -1)
		if fieldsSeed == 0 {
			fieldsSeed = 1
		}
	}
	tp := spe.NewTopology(spe.Config{
		QueueSize:       q.queueSize,
		BatchSize:       q.batchSize,
		Columnar:        q.colOn,
		WatermarkPeriod: wmPeriod,
		WatermarkLag:    int64(q.wmLag),
		Checkpoint:      hooks,
		FieldsSeed:      fieldsSeed,
		Obs:             ins,
	}).SetSpout(q.source)
	for _, fn := range q.maps {
		tp.AddMap(q.name+"/map", q.parallelism, fn)
	}
	tp.SetWindowed(q.name, q.parallelism, q.keyBy, factory)
	tp.SetSink(func(worker int, r core.Result) { sink(worker, r) })
	if len(q.workers) > 0 {
		tp.SetFabric(q.newFabric(coord, ins))
	}

	// Start the reporter (and the opt-in HTTP server) before the first
	// tuple flows, so a scraper sees the full family schema from the
	// run's first instant; stop both after the pipeline has drained
	// (server first, then reporter — LIFO defers).
	if ins != nil {
		rep := obs.NewReporter(ins, q.obsEvery)
		if ctrl != nil {
			rep.OnSnapshot(ctrl.Observe)
		}
		rep.Start()
		defer rep.Stop()
		if q.obsAddr != "" {
			srv := obs.NewServer(ins, rep)
			if err := srv.Start(q.obsAddr); err != nil {
				return Summary{}, fmt.Errorf("spear: %s: %w", q.name, err)
			}
			defer srv.Stop()
			if q.obsStarted != nil {
				q.obsStarted(srv.Addr())
			}
		}
	}

	runErr := tp.Run()
	// Stop the spill plane's workers before returning (goroutine
	// hygiene) and surface any latched async-write error: a run whose
	// spills did not all land must not report success.
	if cerr := plane.Close(); cerr != nil && runErr == nil {
		runErr = fmt.Errorf("spear: %s: spill plane: %w", q.name, cerr)
	}
	if runErr != nil {
		return Summary{}, runErr
	}
	return reg.Summarize(), nil
}
