package spear

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"spear/internal/storage"
)

// TestColumnarIdentity pins the end-to-end columnar contract at the
// public API: a query run with .Columnar(...) must produce exactly the
// results of the same query without it — window values bit-for-bit AND
// the accelerate/exact Mode decision of every window.

// wres is a sink record keyed by worker, since scalar shuffle runs emit
// one result per worker per window.
type wres struct {
	worker int
	r      Result
}

func collectRun(t *testing.T, q *Query) []wres {
	t.Helper()
	var mu sync.Mutex
	var out []wres
	if _, err := q.Run(func(worker int, r Result) {
		mu.Lock()
		out = append(out, wres{worker, r})
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].worker != out[j].worker {
			return out[i].worker < out[j].worker
		}
		return out[i].r.Start < out[j].r.Start
	})
	return out
}

func sameWres(t *testing.T, row, col []wres) {
	t.Helper()
	if len(row) != len(col) {
		t.Fatalf("result count: row=%d columnar=%d", len(row), len(col))
	}
	for i := range row {
		a, b := row[i], col[i]
		if a.worker != b.worker || a.r.Start != b.r.Start || a.r.End != b.r.End {
			t.Fatalf("result %d: worker %d window [%d,%d) vs worker %d window [%d,%d)",
				i, a.worker, a.r.Start, a.r.End, b.worker, b.r.Start, b.r.End)
		}
		if a.r.Mode != b.r.Mode {
			t.Fatalf("worker %d window @%d: Mode %v vs %v", a.worker, a.r.Start, a.r.Mode, b.r.Mode)
		}
		if a.r.N != b.r.N || a.r.SampleN != b.r.SampleN {
			t.Fatalf("worker %d window @%d: n=%d/%d vs n=%d/%d",
				a.worker, a.r.Start, a.r.SampleN, a.r.N, b.r.SampleN, b.r.N)
		}
		if math.Float64bits(a.r.Scalar) != math.Float64bits(b.r.Scalar) {
			t.Fatalf("worker %d window @%d: scalar %v vs %v", a.worker, a.r.Start, a.r.Scalar, b.r.Scalar)
		}
		if math.Float64bits(a.r.EstError) != math.Float64bits(b.r.EstError) {
			t.Fatalf("worker %d window @%d: ε̂ %v vs %v", a.worker, a.r.Start, a.r.EstError, b.r.EstError)
		}
		if len(a.r.Groups) != len(b.r.Groups) {
			t.Fatalf("worker %d window @%d: %d groups vs %d", a.worker, a.r.Start, len(a.r.Groups), len(b.r.Groups))
		}
		for g, av := range a.r.Groups {
			if bv, ok := b.r.Groups[g]; !ok || math.Float64bits(av) != math.Float64bits(bv) {
				t.Fatalf("worker %d window @%d group %q: %v vs %v", a.worker, a.r.Start, g, av, bv)
			}
		}
	}
}

func TestColumnarIdentity(t *testing.T) {
	sec := int64(time.Second)

	t.Run("scalar mean", func(t *testing.T) {
		r := rand.New(rand.NewSource(3))
		var in []Tuple
		for i := 0; i < 5000; i++ {
			in = append(in, NewTuple(int64(i)*sec, Float(r.NormFloat64()*100)))
		}
		build := func() *Query {
			return NewQuery("colmean").
				Source(FromSlice(in)).
				TumblingWindow(200 * time.Second).
				Mean(func(t Tuple) float64 { return t.Vals[0].AsFloat() }).
				BudgetTuples(50).Error(0.10, 0.95).Seed(9)
		}
		sameWres(t, collectRun(t, build()), collectRun(t, build().Columnar(0)))
	})

	t.Run("scalar median both modes", func(t *testing.T) {
		// Window sizes straddle the budget so the run mixes sampled
		// (fully-sampled small windows) and exact-fallback (large
		// windows) decisions; both must match bit-for-bit.
		r := rand.New(rand.NewSource(5))
		var in []Tuple
		for w := 0; w < 8; w++ {
			n := 50
			if w%2 == 1 {
				n = 600
			}
			for i := 0; i < n; i++ {
				in = append(in, NewTuple((int64(w*100)+int64(i)%100)*sec, Float(r.NormFloat64()*50)))
			}
		}
		build := func() *Query {
			return NewQuery("colmedian").
				Source(FromSlice(in)).
				TumblingWindow(100 * time.Second).
				Median(func(t Tuple) float64 { return t.Vals[0].AsFloat() }).
				BudgetTuples(80).Error(0.10, 0.95).Seed(4)
		}
		rowRes := collectRun(t, build())
		sameWres(t, rowRes, collectRun(t, build().Columnar(0)))
		sampled, exact := 0, 0
		for _, w := range rowRes {
			switch w.r.Mode.String() {
			case "sampled":
				sampled++
			case "exact":
				exact++
			}
		}
		if sampled == 0 || exact == 0 {
			t.Fatalf("mode mix sampled=%d exact=%d, want both", sampled, exact)
		}
	})

	t.Run("scalar parallel 4", func(t *testing.T) {
		r := rand.New(rand.NewSource(7))
		var in []Tuple
		for i := 0; i < 8000; i++ {
			in = append(in, NewTuple(int64(i/4)*sec, Float(r.Float64()*1000)))
		}
		build := func() *Query {
			return NewQuery("colpar").
				Source(FromSlice(in)).
				SlidingWindow(400*time.Second, 100*time.Second).
				Mean(func(t Tuple) float64 { return t.Vals[0].AsFloat() }).
				DisableIncremental().
				BudgetTuples(120).Error(0.10, 0.95).Seed(2).Parallelism(4)
		}
		sameWres(t, collectRun(t, build()), collectRun(t, build().Columnar(0)))
	})

	t.Run("grouped known groups", func(t *testing.T) {
		r := rand.New(rand.NewSource(13))
		groups := []string{"ny", "sf", "la"}
		var in []Tuple
		for i := 0; i < 6000; i++ {
			v := 500 + r.NormFloat64()
			if (i/1500)%2 == 1 {
				v = math.Abs(r.NormFloat64()) * math.Pow(10, float64(r.Intn(7)))
			}
			in = append(in, NewTuple(int64(i/6)*sec, Str(groups[i%3]), Float(v)))
		}
		build := func() *Query {
			return NewQuery("colgrouped").
				Source(FromSlice(in)).
				TumblingWindow(250 * time.Second).
				GroupBy(func(t Tuple) string { return t.Vals[0].AsString() }).
				Mean(func(t Tuple) float64 { return t.Vals[1].AsFloat() }).
				DisableIncremental().
				KnownGroups(3).
				BudgetTuples(300).Error(0.10, 0.95).Seed(6)
		}
		sameWres(t, collectRun(t, build()), collectRun(t, build().Columnar(1, 0)))
	})

	t.Run("fused map chain", func(t *testing.T) {
		// Maps present: the columnar run fuses them into the spout's
		// per-batch kernel (no stage goroutines); at parallelism 1 the
		// surviving tuple stream is identical, so results are too.
		r := rand.New(rand.NewSource(17))
		var in []Tuple
		for i := 0; i < 6000; i++ {
			in = append(in, NewTuple(int64(i)*sec, Float(r.Float64()*100)))
		}
		build := func() *Query {
			return NewQuery("colfused").
				Source(FromSlice(in)).
				Map(func(t Tuple) (Tuple, bool) { // annotate: shift the measure
					return NewTuple(t.Ts, Float(t.Vals[0].AsFloat()+1)), true
				}).
				Map(func(t Tuple) (Tuple, bool) { // filter: drop small readings
					return t, t.Vals[0].AsFloat() >= 8
				}).
				TumblingWindow(300 * time.Second).
				Mean(func(t Tuple) float64 { return t.Vals[0].AsFloat() }).
				BudgetTuples(60).Error(0.10, 0.95).Seed(11)
		}
		sameWres(t, collectRun(t, build()), collectRun(t, build().Columnar(0)))
	})
}

// TestColumnarIdentityCrashRecover runs the checkpoint stop-and-resume
// cycle with the columnar lane enabled (checkpointing disables operator
// fusion but keeps the columnar kernels) and requires the union of both
// legs to equal a plain row-path reference run bit-for-bit.
func TestColumnarIdentityCrashRecover(t *testing.T) {
	const (
		n      = 2000
		winSec = 100
		stopAt = 1100
	)
	sec := int64(time.Second)
	mk := func(lo, hi int) []Tuple {
		var ts []Tuple
		for i := lo; i < hi; i++ {
			ts = append(ts, NewTuple(int64(i)*sec, Float(float64(i%50))))
		}
		return ts
	}
	build := func(src Source, store storage.SpillStore) *Query {
		return NewQuery("colckpt").
			Source(src).
			TumblingWindow(winSec * time.Second).
			Median(func(t Tuple) float64 { return t.Vals[0].AsFloat() }).
			BudgetTuples(64).
			Error(0.10, 0.95).
			Seed(7).
			QueueSize(32).
			SpillStore(store)
	}

	// Row-path reference, uninterrupted, no columnar.
	ref := &sinkBuf{}
	if _, err := build(FromSlice(mk(0, n)), storage.NewMemStore()).Run(ref.add); err != nil {
		t.Fatal(err)
	}
	refRes := ref.sorted()
	if len(refRes) != n/winSec {
		t.Fatalf("reference: %d windows, want %d", len(refRes), n/winSec)
	}

	// Columnar leg 1 dies after stopAt tuples; leg 2 recovers.
	store := storage.NewMemStore()
	leg1 := &sinkBuf{}
	if _, err := build(FromSlice(mk(0, stopAt)), store).
		Columnar(0).
		CheckpointEvery(400, 0).
		Run(leg1.add); err != nil {
		t.Fatal(err)
	}
	leg2 := &sinkBuf{}
	if _, err := build(FromSlice(mk(0, n)), store).
		Columnar(0).
		CheckpointEvery(400, 0).
		Recover().
		Run(leg2.add); err != nil {
		t.Fatal(err)
	}
	if len(leg2.sorted()) >= len(refRes) {
		t.Fatalf("leg 2 emitted %d windows; recovery did not skip the prefix", len(leg2.sorted()))
	}

	merged := map[int64]Result{}
	for _, r := range leg1.sorted() {
		merged[r.Start] = r
	}
	for _, r := range leg2.sorted() {
		if prev, dup := merged[r.Start]; dup && (prev.Scalar != r.Scalar || prev.Mode != r.Mode) {
			t.Errorf("window @%d diverged across legs: %+v vs %+v", r.Start, prev, r)
		}
		merged[r.Start] = r
	}
	if len(merged) != len(refRes) {
		t.Fatalf("merged %d windows, want %d", len(merged), len(refRes))
	}
	for _, w := range refRes {
		g, ok := merged[w.Start]
		if !ok {
			t.Errorf("window @%d missing from merged output", w.Start)
			continue
		}
		if math.Float64bits(g.Scalar) != math.Float64bits(w.Scalar) ||
			g.N != w.N || g.SampleN != w.SampleN || g.Mode != w.Mode {
			t.Errorf("window @%d: columnar %+v, row reference %+v", w.Start, g, w)
		}
	}
}
