package spear

import (
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"sync"
	"time"

	"spear/internal/checkpoint"
	"spear/internal/control"
	"spear/internal/core"
	"spear/internal/metrics"
	"spear/internal/obs"
	"spear/internal/sample"
	"spear/internal/spe"
	"spear/internal/spill"
	"spear/internal/storage"
	"spear/internal/transport"
)

// Distribute runs the windowed stage on remote shard nodes instead of
// local goroutines: the parallelism is split contiguously across the
// given addresses, each hosting a ServeShard process built from the
// same query definition (the handshake verifies this structurally).
// Data batches, watermarks, and checkpoint barriers cross the wire in
// per-sender order, so results — values and production mode — are
// bit-identical to a single-process run with the same seed, and
// aligned-barrier checkpoints plus source replay work unchanged.
// Checkpointed distributed runs need a SpillStore every process shares
// (e.g. a FileStore on a common directory).
func (q *Query) Distribute(addrs ...string) *Query {
	if len(addrs) == 0 {
		return q.errf("Distribute needs at least one node address")
	}
	q.workers = append([]string(nil), addrs...)
	return q
}

// ServeShard runs this process as one shard node of a distributed
// query: it serves the windowed workers the source's handshake assigns
// to it and returns when the run completes or fails. The query must be
// built from the same definition as the source's (the same code,
// typically — the handshake rejects structural mismatches); Source and
// parallelism are the source process's concern and are ignored here.
func (q *Query) ServeShard(lis net.Listener) error {
	if len(q.errs) > 0 {
		return errors.Join(q.errs...)
	}
	if !q.haveSpec {
		return fmt.Errorf("spear: %s: no window", q.name)
	}
	if !q.haveAgg {
		return fmt.Errorf("spear: %s: no aggregate", q.name)
	}
	store, plane, reg, err := q.assembleRuntime()
	if err != nil {
		return err
	}

	ins := q.obsInto
	var tobs *obs.TransportObs
	if ins != nil {
		ins.SetRegistry(reg)
		ins.SetStore(plane)
		ins.SetSpillPlane(plane)
		tobs = ins.RegisterTransport("source")
	}

	ns := q.name + "/ckpt"
	srv := transport.NewServer(lis, transport.ServerConfig{
		TopoHash: q.topoHash(),
		Window:   q.transportWindow,
		PeerWait: q.transportPeerWait,
		Obs:      tobs,
		Start: func(spec transport.JobSpec, ack func(transport.SnapAck) error) (*spe.ShardRun, error) {
			factory := q.managerFactory(plane, reg, spec.Checkpoint)
			var hooks *spe.CheckpointHooks
			if spec.Checkpoint {
				// Worker-side checkpoint protocol: restore from the
				// manifest the source recovered to (loaded once, shared
				// across this node's workers), persist blobs locally at
				// each alignment point, acknowledge over the wire.
				var once sync.Once
				var m checkpoint.Manifest
				var merr error
				hooks = &spe.CheckpointHooks{
					Restore: func(wi int, mgr core.Manager) error {
						if spec.RestoreID == 0 {
							return checkpoint.Rewind(mgr, wi)
						}
						once.Do(func() { m, merr = checkpoint.LoadManifest(store, ns, spec.RestoreID) })
						if merr != nil {
							return merr
						}
						return checkpoint.RestoreWorker(store, m, wi, mgr)
					},
					Snapshot: func(id uint64, wi int, mgr core.Manager) error {
						op, deferred, err := checkpoint.SnapshotBlob(store, ns, id, wi, mgr)
						if err != nil {
							return err
						}
						return ack(transport.SnapAck{
							ID: id, Worker: op.Worker, Key: op.Key,
							Size: op.Size, Sum: op.Sum, Deferred: deferred,
						})
					},
				}
			}
			return spe.StartShard(spe.Shard{
				Name: q.name, Lo: spec.Lo, Hi: spec.Hi, Senders: spec.Senders,
				BatchSize: spec.BatchSize, QueueSize: spec.QueueSize,
				Factory: factory, Hooks: hooks, Obs: ins,
			})
		},
	})
	err = srv.Serve()
	if cerr := plane.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("spear: %s: spill plane: %w", q.name, cerr)
	}
	return err
}

// assembleRuntime builds the pieces Run and ServeShard share: the raw
// spill store, the spill I/O plane the managers talk to (the user's
// store, optionally behind the compressed chunk codec, behind the
// async write-behind/prefetch plane — a transparent synchronous
// passthrough when SpillWorkers is 0), and the metrics registry. The
// checkpoint machinery deliberately keeps the raw store: manifest and
// blob writes are commit points and must stay synchronous, while
// spilled-state durability is enforced by the plane's barrier inside
// each snapshot.
func (q *Query) assembleRuntime() (storage.SpillStore, *spill.Plane, *metrics.Registry, error) {
	if q.budgetTuples == 0 {
		// A sensible default: enough for a 10%/95% quantile per the
		// Hoeffding bound, with headroom.
		q.budgetTuples = 1000
	}
	store := q.store
	if store == nil {
		store = storage.NewMemStore()
	}
	planeInner := store
	if q.spillCompression > 0 {
		cs, err := spill.NewCodecStore(store, q.spillCompression)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("spear: %s: %w", q.name, err)
		}
		planeInner = cs
	}
	plane := spill.NewPlane(planeInner, spill.Options{
		Workers:    q.spillWorkers,
		QueueBytes: q.spillQueueBytes,
		CacheBytes: q.spillCacheBytes,
	})
	reg := q.registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return store, plane, reg, nil
}

// managerFactory returns the stateful-manager factory both runtimes
// use. Worker indices are always global, so per-worker seeds, store
// keys, and telemetry names agree across processes.
func (q *Query) managerFactory(plane *spill.Plane, reg *metrics.Registry, deferDeletes bool) spe.ManagerFactory {
	return func(wi int) (core.Manager, error) {
		var cell *control.Cell
		if wi < len(q.controlCells) {
			cell = q.controlCells[wi]
		}
		cfg := core.Config{
			Spec:               q.spec,
			Agg:                q.aggFunc,
			Custom:             q.custom,
			Value:              q.value,
			KeyBy:              q.keyBy,
			Epsilon:            q.epsilon,
			Confidence:         q.confidence,
			BudgetTuples:       q.budgetTuples,
			KnownGroups:        q.knownGroups,
			Store:              plane,
			Key:                fmt.Sprintf("%s/%s/%d", q.name, q.backend, wi),
			SpillAhead:         q.spillAhead,
			Seed:               sample.DeriveSeed(q.seed, int64(wi)),
			DisableIncremental: q.disableIncremental,
			ScalarEstimator:    q.scalarEst,
			GroupedEstimator:   q.groupedEst,
			Metrics:            reg.Worker(fmt.Sprintf("%s[%d]", q.name, wi)),
			Budget:             q.budgetPolicy,
			Cell:               cell,
			// The spec only authorizes the columnar kernels; it never
			// changes results, so it stays out of topoHash and shard
			// nodes (which drive the row batch path regardless) may
			// disagree with the source about it.
			Columnar: core.ColumnarSpec{
				Enabled:    q.colOn,
				ValueField: q.colValueField,
				KeyField:   q.colKeyField,
			},
			DeferStoreDeletes: deferDeletes,
		}
		switch q.backend {
		case BackendExact:
			return core.NewExactManager(cfg, q.exactBufferBytes)
		case BackendIncremental:
			return core.NewIncrementalManager(cfg)
		default:
			if q.keyBy != nil {
				return core.NewGroupedManager(cfg)
			}
			return core.NewScalarManager(cfg)
		}
	}
}

// topoHash digests the query parameters that determine results, so a
// source and a shard built from diverged definitions refuse to pair
// instead of silently computing different answers.
func (q *Query) topoHash() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d|%d|%d|%d|%d",
		q.name, q.backend, q.spec.Domain, q.spec.Range, q.spec.Slide,
		q.parallelism, len(q.maps))
	fmt.Fprintf(h, "|%d|%g|%g|%g|%d|%d|%d|%t|%t",
		q.aggFunc.Op, q.aggFunc.P, q.epsilon, q.confidence,
		q.budgetTuples, q.knownGroups, q.seed,
		q.keyBy != nil, q.disableIncremental)
	custom := ""
	if q.custom != nil {
		custom = q.custom.Name
	}
	fmt.Fprintf(h, "|%s|%d|%d", custom, q.batchSize, q.queueSize)
	return h.Sum64()
}

// newFabric wires the source side of the shuffle: node addresses, the
// structural hash, a fresh run identity, and — when checkpointing —
// the coordinator's confirm path and the manifest shards restore from.
func (q *Query) newFabric(coord *checkpoint.Coordinator, ins *obs.Instruments) *transport.Fabric {
	if q.runID == 0 {
		q.runID = uint64(time.Now().UnixNano())
	}
	cfg := transport.FabricConfig{
		Nodes:       q.workers,
		TopoHash:    q.topoHash(),
		RunID:       q.runID,
		BatchSize:   q.batchSize,
		Dialer:      q.transportDialer,
		Window:      q.transportWindow,
		MaxRedials:  q.transportRedials,
		BackoffBase: q.transportBackoff,
		BackoffMax:  q.transportBackMax,
		Obs:         ins,
	}
	if coord != nil {
		cfg.Checkpoint = true
		if m, ok := coord.Restored(); ok {
			cfg.RestoreID = m.ID
		}
		cfg.Confirm = func(a transport.SnapAck) error {
			return coord.Confirm(a.ID, checkpoint.Operator{
				Worker: a.Worker, Key: a.Key, Size: a.Size, Sum: a.Sum,
			}, a.Deferred)
		}
	}
	return transport.NewFabric(cfg)
}
