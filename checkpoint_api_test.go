package spear

import (
	"strings"
	"testing"
	"time"

	"spear/internal/storage"
)

// TestCheckpointStopAndResume exercises the public fault-tolerance API:
// a query checkpointing into its spill store stops partway through the
// stream, and a second query with Recover() resumes from the last
// committed checkpoint. The union of both legs' windows must equal an
// uninterrupted reference run exactly.
func TestCheckpointStopAndResume(t *testing.T) {
	const (
		n       = 2000 // seconds of stream
		winSec  = 100  // tumbling window length
		stopAt  = 1100 // leg 1 sees tuples [0, stopAt)
		ckptSec = 400  // checkpoint cadence in tuples
	)
	mk := func(lo, hi int) []Tuple {
		var ts []Tuple
		for i := lo; i < hi; i++ {
			ts = append(ts, NewTuple(int64(i)*int64(time.Second), Float(float64(i%50))))
		}
		return ts
	}
	build := func(src Source, store storage.SpillStore) *Query {
		return NewQuery("ckptq").
			Source(src).
			TumblingWindow(winSec * time.Second).
			Mean(func(t Tuple) float64 { return t.Vals[0].AsFloat() }).
			BudgetTuples(64).
			Error(0.05, 0.95).
			Seed(7).
			QueueSize(32). // backpressure keeps the spout near the worker
			SpillStore(store)
	}

	// Uninterrupted reference.
	ref := &sinkBuf{}
	if _, err := build(FromSlice(mk(0, n)), storage.NewMemStore()).Run(ref.add); err != nil {
		t.Fatal(err)
	}
	refRes := ref.sorted()
	if len(refRes) != n/winSec {
		t.Fatalf("reference: %d windows, want %d", len(refRes), n/winSec)
	}

	// Leg 1: the stream "ends" (process dies) after stopAt tuples.
	store := storage.NewMemStore()
	var cm1 CheckpointMetrics
	leg1 := &sinkBuf{}
	if _, err := build(FromSlice(mk(0, stopAt)), store).
		CheckpointEvery(ckptSec, 0).
		CheckpointMetricsInto(&cm1).
		Run(leg1.add); err != nil {
		t.Fatal(err)
	}
	if got := cm1.Completed.Load(); got < 1 {
		t.Fatalf("leg 1 completed %d checkpoints, want >= 1", got)
	}
	if cm1.SnapshotBytes.Load() == 0 || cm1.LastBytes.Load() == 0 {
		t.Fatal("leg 1: no snapshot bytes accounted")
	}

	// Leg 2: a fresh query over the full stream recovers and resumes.
	var cm2 CheckpointMetrics
	leg2 := &sinkBuf{}
	if _, err := build(FromSlice(mk(0, n)), store).
		CheckpointEvery(ckptSec, 0).
		Recover().
		CheckpointMetricsInto(&cm2).
		Run(leg2.add); err != nil {
		t.Fatal(err)
	}
	if cm2.RecoveryTime.Load() == 0 {
		t.Fatal("leg 2: recovery time gauge not set")
	}
	// Recovery skipped the prefix: leg 2 must emit fewer windows than
	// the reference (it starts from the checkpointed offset, not 0).
	if len(leg2.sorted()) >= len(refRes) {
		t.Fatalf("leg 2 emitted %d windows; recovery did not skip the prefix", len(leg2.sorted()))
	}

	// Union of the two legs == reference, with overlap agreeing.
	type key struct{ start int64 }
	merged := map[key]Result{}
	for _, r := range leg1.sorted() {
		merged[key{r.Start}] = r
	}
	for _, r := range leg2.sorted() {
		if prev, dup := merged[key{r.Start}]; dup {
			if prev.Scalar != r.Scalar || prev.N != r.N || prev.Mode != r.Mode {
				t.Errorf("window @%d diverged across legs: %+v vs %+v", r.Start, prev, r)
			}
		}
		merged[key{r.Start}] = r
	}
	if len(merged) != len(refRes) {
		t.Fatalf("merged %d windows, want %d", len(merged), len(refRes))
	}
	for _, w := range refRes {
		g, ok := merged[key{w.Start}]
		if !ok {
			t.Errorf("window @%d missing from merged output", w.Start)
			continue
		}
		if g.Scalar != w.Scalar || g.N != w.N || g.SampleN != w.SampleN || g.Mode != w.Mode {
			t.Errorf("window @%d: got %+v, want %+v", w.Start, g, w)
		}
	}
}

func TestCheckpointValidation(t *testing.T) {
	src := FromSlice([]Tuple{NewTuple(0, Float(1))})
	sink := func(int, Result) {}
	for name, q := range map[string]*Query{
		"negative tuples":   NewQuery("v").Source(src).TumblingWindow(time.Second).Count().CheckpointEvery(-1, 0),
		"negative interval": NewQuery("v").Source(src).TumblingWindow(time.Second).Count().CheckpointEvery(0, -time.Second),
		"no trigger":        NewQuery("v").Source(src).TumblingWindow(time.Second).Count().CheckpointEvery(0, 0),
	} {
		if _, err := q.Run(sink); err == nil {
			t.Errorf("%s: accepted", name)
		} else if !strings.Contains(err.Error(), "checkpoint") {
			t.Errorf("%s: error %v does not mention checkpoints", name, err)
		}
	}
}
