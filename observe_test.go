package spear

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"spear/internal/leakcheck"
	"spear/internal/obs"
	"spear/internal/storage"
)

// TestObserveEndToEndScrape runs a real query with the full
// observability plane on — reporter, HTTP server, lifecycle trace — and
// scrapes /metrics from inside the sink, i.e. while tuples are still
// flowing. This is the acceptance gate's shape: a mid-run GET /metrics
// must serve valid Prometheus text carrying the queue-depth,
// watermark-lag, batch-occupancy, spill, and checkpoint families.
func TestObserveEndToEndScrape(t *testing.T) {
	leakcheck.Check(t)
	const n = 20_000
	ts := make([]Tuple, n)
	for i := range ts {
		ts[i] = NewTuple(int64(i)*int64(time.Second), Float(float64(i%100)))
	}

	ins := NewInstruments()
	addrCh := make(chan string, 1)
	var (
		scrapeOnce sync.Once
		metricsTxt string
		snapTxt    string
		traceTxt   string
		scrapeErr  error
	)
	get := func(addr, path string) (string, error) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return string(body), err
	}

	buf := &sinkBuf{}
	sum, err := NewQuery("obsq").
		Source(FromSlice(ts)).
		TumblingWindow(500*time.Second).
		Mean(func(t Tuple) float64 { return t.Vals[0].AsFloat() }).
		BudgetTuples(64).
		Error(0.05, 0.95).
		Seed(3).
		Parallelism(2).
		SpillStore(storage.NewMemStore()).
		CheckpointEvery(5_000, 0).
		ObserveAddr("127.0.0.1:0").
		ObserveEvery(5*time.Millisecond).
		// Trace everything with a ring large enough that the early
		// ingest events survive to the end of the run.
		TraceEvery(1, 3*n).
		ObserveWith(ins).
		OnObserveStart(func(addr string) { addrCh <- addr }).
		Run(func(w int, r Result) {
			buf.add(w, r)
			scrapeOnce.Do(func() {
				// First result: the pipeline is still pushing tuples, so
				// this is a genuinely mid-run scrape.
				addr := <-addrCh
				if metricsTxt, scrapeErr = get(addr, "/metrics"); scrapeErr != nil {
					return
				}
				if snapTxt, scrapeErr = get(addr, "/snapshot"); scrapeErr != nil {
					return
				}
				traceTxt, scrapeErr = get(addr, "/trace")
			})
		})
	if err != nil {
		t.Fatal(err)
	}
	if scrapeErr != nil {
		t.Fatal(scrapeErr)
	}
	if metricsTxt == "" {
		t.Fatal("the run produced no results, so no scrape happened")
	}

	for _, fam := range []string{
		"spear_source_tuples_total",
		"spear_edge_queue_depth",
		"spear_edge_queue_capacity",
		"spear_sink_queue_depth",
		"spear_worker_watermark_lag_seconds",
		"spear_batch_occupancy",
		"spear_worker_windows_total",
		"spear_spill_ops_total",
		"spear_checkpoint_completed_total",
	} {
		if !strings.Contains(metricsTxt, "# TYPE "+fam+" ") {
			t.Errorf("mid-run /metrics missing family %s", fam)
		}
	}

	var snap Snapshot
	if err := json.Unmarshal([]byte(snapTxt), &snap); err != nil {
		t.Fatalf("/snapshot not JSON: %v", err)
	}
	if len(snap.Edges) == 0 || len(snap.Workers) == 0 {
		t.Errorf("mid-run snapshot has no edges/workers: %+v", snap)
	}
	var tr struct {
		Recorded uint64 `json:"recorded"`
	}
	if err := json.Unmarshal([]byte(traceTxt), &tr); err != nil {
		t.Fatalf("/trace not JSON: %v", err)
	}

	// Post-run, the caller-owned instruments stay inspectable.
	final := ins.Snapshot(time.Now())
	if final.SourceTuples != n {
		t.Errorf("final source tuples = %d, want %d", final.SourceTuples, n)
	}
	if final.Occupancy.Count == 0 {
		t.Error("no batches recorded in the occupancy histogram")
	}
	if sum.Windows == 0 || len(buf.sorted()) == 0 {
		t.Fatalf("no windows produced: %+v", sum)
	}

	// The n=1 trace saw the whole lifecycle: every kind appears.
	kinds := map[string]bool{}
	for _, ev := range ins.Trace().Events() {
		kinds[ev.Kind] = true
	}
	for _, k := range []string{obs.TraceIngest, obs.TraceAssign, obs.TraceFire, obs.TraceEmit} {
		if !kinds[k] {
			t.Errorf("trace never recorded a %q event (got %v)", k, kinds)
		}
	}
}

func TestObserveValidation(t *testing.T) {
	src := FromSlice([]Tuple{NewTuple(0, Float(1))})
	sink := func(int, Result) {}
	for name, q := range map[string]*Query{
		"empty addr":   NewQuery("v").Source(src).TumblingWindow(time.Second).Count().ObserveAddr(""),
		"zero period":  NewQuery("v").Source(src).TumblingWindow(time.Second).Count().ObserveEvery(0),
		"nil ins":      NewQuery("v").Source(src).TumblingWindow(time.Second).Count().ObserveWith(nil),
		"zero trace n": NewQuery("v").Source(src).TumblingWindow(time.Second).Count().TraceEvery(0, 0),
	} {
		if _, err := q.Run(sink); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestMergedSourceCheckpointResume is the recovery-identity gate for
// merged sources: a query reading Merge(evens, odds) checkpoints, dies,
// and resumes — the union of both legs must equal an uninterrupted
// reference run window for window. Before mergeSpout implemented
// SeekTo, recovery over a merge silently replayed from the wrong
// position.
func TestMergedSourceCheckpointResume(t *testing.T) {
	const (
		n      = 2000
		winSec = 100
		stopAt = 1100
	)
	mk := func(hi int, parity int) []Tuple {
		var ts []Tuple
		for i := parity; i < hi; i += 2 {
			ts = append(ts, NewTuple(int64(i)*int64(time.Second), Float(float64(i%50))))
		}
		return ts
	}
	build := func(src Source, store storage.SpillStore) *Query {
		return NewQuery("mergeckpt").
			Source(src).
			TumblingWindow(winSec*time.Second).
			Mean(func(t Tuple) float64 { return t.Vals[0].AsFloat() }).
			BudgetTuples(64).
			Error(0.05, 0.95).
			Seed(11).
			QueueSize(32).
			SpillStore(store)
	}

	ref := &sinkBuf{}
	if _, err := build(Merge(FromSlice(mk(n, 0)), FromSlice(mk(n, 1))), storage.NewMemStore()).Run(ref.add); err != nil {
		t.Fatal(err)
	}
	refRes := ref.sorted()
	if len(refRes) != n/winSec {
		t.Fatalf("reference: %d windows, want %d", len(refRes), n/winSec)
	}

	// Leg 1: the merged stream ends early (the process "dies").
	store := storage.NewMemStore()
	var cm CheckpointMetrics
	leg1 := &sinkBuf{}
	if _, err := build(Merge(FromSlice(mk(stopAt, 0)), FromSlice(mk(stopAt, 1))), store).
		CheckpointEvery(400, 0).
		CheckpointMetricsInto(&cm).
		Run(leg1.add); err != nil {
		t.Fatal(err)
	}
	if cm.Completed.Load() < 1 {
		t.Fatal("leg 1 committed no checkpoints")
	}

	// Leg 2: the full merged stream recovers and resumes.
	leg2 := &sinkBuf{}
	if _, err := build(Merge(FromSlice(mk(n, 0)), FromSlice(mk(n, 1))), store).
		CheckpointEvery(400, 0).
		Recover().
		Run(leg2.add); err != nil {
		t.Fatal(err)
	}
	if len(leg2.sorted()) >= len(refRes) {
		t.Fatalf("leg 2 emitted %d windows; recovery did not skip the prefix", len(leg2.sorted()))
	}

	merged := map[int64]Result{}
	for _, r := range leg1.sorted() {
		merged[r.Start] = r
	}
	for _, r := range leg2.sorted() {
		if prev, dup := merged[r.Start]; dup {
			if prev.Scalar != r.Scalar || prev.N != r.N || prev.Mode != r.Mode {
				t.Errorf("window @%d diverged across legs: %+v vs %+v", r.Start, prev, r)
			}
		}
		merged[r.Start] = r
	}
	if len(merged) != len(refRes) {
		t.Fatalf("merged %d windows, want %d", len(merged), len(refRes))
	}
	for _, w := range refRes {
		g, ok := merged[w.Start]
		if !ok {
			t.Errorf("window @%d missing from merged output", w.Start)
			continue
		}
		if g.Scalar != w.Scalar || g.N != w.N || g.SampleN != w.SampleN || g.Mode != w.Mode {
			t.Errorf("window @%d: got %+v, want %+v", w.Start, g, w)
		}
	}
}
