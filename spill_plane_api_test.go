package spear

import (
	"math"
	"sync"
	"testing"
	"time"

	"spear/internal/core"
	"spear/internal/storage"
	"spear/internal/window"
)

// resultSet collects results keyed by (worker, window) so two runs of
// the same query can be compared window by window.
type resultKey struct {
	worker int
	id     window.ID
}

type resultSet struct {
	mu  sync.Mutex
	res map[resultKey]Result
}

func newResultSet() *resultSet { return &resultSet{res: map[resultKey]Result{}} }

func (s *resultSet) add(worker int, r Result) {
	s.mu.Lock()
	s.res[resultKey{worker, r.WindowID}] = r
	s.mu.Unlock()
}

// mustMatch requires b to reproduce a exactly: same result set, same
// Mode per window, bit-identical scalar and per-group values. The spill
// plane reorders I/O, never arithmetic, so nothing weaker than
// bit-equality is acceptable.
func (s *resultSet) mustMatch(t *testing.T, label string, b *resultSet) {
	t.Helper()
	if len(s.res) != len(b.res) {
		t.Fatalf("%s: result count %d != sync's %d", label, len(b.res), len(s.res))
	}
	for k, ra := range s.res {
		rb, ok := b.res[k]
		if !ok {
			t.Fatalf("%s: worker %d window %d missing", label, k.worker, k.id)
		}
		if ra.Mode != rb.Mode {
			t.Errorf("%s: worker %d window %d mode %v != sync's %v", label, k.worker, k.id, rb.Mode, ra.Mode)
		}
		if math.Float64bits(ra.Scalar) != math.Float64bits(rb.Scalar) {
			t.Errorf("%s: worker %d window %d scalar %v != sync's %v", label, k.worker, k.id, rb.Scalar, ra.Scalar)
		}
		if len(ra.Groups) != len(rb.Groups) {
			t.Errorf("%s: worker %d window %d group count %d != sync's %d", label, k.worker, k.id, len(rb.Groups), len(ra.Groups))
			continue
		}
		for g, va := range ra.Groups {
			if vb, ok := rb.Groups[g]; !ok || math.Float64bits(va) != math.Float64bits(vb) {
				t.Errorf("%s: worker %d window %d group %q %v != sync's %v", label, k.worker, k.id, g, rb.Groups[g], va)
			}
		}
	}
}

// TestSpillPlaneIdentity runs the same spill-heavy query with the
// synchronous store path, with the async plane (write-behind +
// prefetch), and with the async plane plus the compressed chunk codec,
// and requires every configuration to produce identical results —
// values and accelerate/exact Mode decisions. The workload is the
// adversarial one for spilling: a sliding-window mean forced down the
// exact path, so every pane round-trips through the spill store.
func TestSpillPlaneIdentity(t *testing.T) {
	const (
		tuples     = 40_000
		slideTicks = 1000
		rangeTicks = 8 * slideTicks
		lagTicks   = 2 * slideTicks
	)
	in := make([]Tuple, tuples)
	vals := make([]Value, tuples)
	for i := range in {
		vals[i] = Float(float64((i*2654435761)&1023) / 8)
		in[i] = Tuple{Ts: int64(i), Vals: vals[i : i+1 : i+1]}
	}

	build := func(name string, store *storage.MemStore, ins *Instruments) *Query {
		q := NewQuery(name).
			Source(FromSlice(in)).
			SlidingWindow(time.Duration(rangeTicks), time.Duration(slideTicks)).
			// Watermark lag separates a pane's archival from its first
			// read, which is what gives the prefetcher something to do.
			WatermarkEvery(time.Duration(slideTicks), time.Duration(lagTicks)).
			Mean(func(t Tuple) float64 { return t.Vals[0].AsFloat() }).
			// Tight ε against a tiny budget: the estimate check fails on
			// every window, forcing the exact fallback that reads S.
			Error(0.002, 0.99).
			BudgetTuples(64).
			DisableIncremental().
			Parallelism(1).
			Seed(7).
			SpillStore(store)
		if ins != nil {
			q.ObserveWith(ins)
		}
		return q
	}

	// Sync reference.
	syncStore := storage.NewMemStore()
	syncRes := newResultSet()
	if _, err := build("spill-sync", syncStore, nil).Run(syncRes.add); err != nil {
		t.Fatal(err)
	}
	if syncStore.Stats().Stores == 0 {
		t.Fatal("sync run never hit the spill store; the workload is not exercising spilling")
	}
	if n := len(syncRes.res); n == 0 {
		t.Fatal("sync run produced no results")
	}
	for k, r := range syncRes.res {
		if r.Mode != core.ModeExact {
			t.Fatalf("window %d mode %v; the workload must force the exact fallback", k.id, r.Mode)
		}
	}

	cases := []struct {
		label string
		cfg   func(q *Query) *Query
		codec bool
	}{
		{"async", func(q *Query) *Query {
			return q.SpillWorkers(4).SpillAhead(2)
		}, false},
		{"async+codec", func(q *Query) *Query {
			return q.SpillWorkers(4).SpillAhead(2).SpillCompression(1).
				SpillQueueBytes(4 << 20).SpillCacheBytes(16 << 20)
		}, true},
	}
	for _, tc := range cases {
		t.Run(tc.label, func(t *testing.T) {
			store := storage.NewMemStore()
			ins := NewInstruments()
			res := newResultSet()
			if _, err := tc.cfg(build("spill-"+tc.label, store, ins)).Run(res.add); err != nil {
				t.Fatal(err)
			}
			syncRes.mustMatch(t, tc.label, res)

			snap := ins.Snapshot(time.Now())
			sp := snap.SpillPlane
			if sp == nil {
				t.Fatal("no spill-plane telemetry; the async plane never attached")
			}
			if !sp.Async {
				t.Error("plane reports synchronous mode despite SpillWorkers > 0")
			}
			if sp.AsyncWrites == 0 {
				t.Error("plane recorded no async writes; write-behind never engaged")
			}
			if sp.PrefetchIssued == 0 {
				t.Error("plane issued no prefetches; watermark-driven prefetch never engaged")
			}
			if sp.CacheHits == 0 {
				t.Error("chunk cache recorded no hits")
			}
			if tc.codec {
				if sp.RawBytes == 0 || sp.EncodedBytes == 0 {
					t.Errorf("codec counters raw=%d encoded=%d; compression never engaged", sp.RawBytes, sp.EncodedBytes)
				}
			} else if sp.RawBytes != 0 || sp.EncodedBytes != 0 {
				t.Errorf("codec counters raw=%d encoded=%d without SpillCompression", sp.RawBytes, sp.EncodedBytes)
			}
		})
	}
}
