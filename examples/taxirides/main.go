// Taxirides reproduces the paper's running example (Figs. 1 and 5) on
// the DEBS-2015-style taxi stream: per-route average fares over
// 30-minute sliding windows advancing every 15 minutes, grouped by
// route, with four parallel workers partitioned by route hash.
//
// DEBS is the paper's sparse-groups case: a ~10K-tuple window holds
// ~5K distinct routes, most appearing once or twice, so the budget must
// be large enough to represent every group (§5.2 sets b=2000 per
// worker). The example prints a handful of route results and the run
// statistics.
//
// Run it with:
//
//	go run ./examples/taxirides [-tuples N]
package main

import (
	"flag"
	"fmt"
	"sort"
	"sync"
	"time"

	"spear"
	"spear/internal/dataset"
)

func main() {
	tuples := flag.Int("tuples", 1_000_000, "stream length (the paper's dataset has 56M)")
	flag.Parse()

	ds := dataset.DEBS(dataset.DEBSConfig{Tuples: *tuples, Seed: 11})

	var mu sync.Mutex
	type winKey struct {
		worker int
		id     int64
	}
	groupCounts := map[winKey]int{}
	var lastWindow map[string]float64
	var lastStart, lastEnd int64

	summary, err := spear.NewQuery("avg-fare-by-route").
		Source(spear.FromFunc(ds.Next)).
		SlidingWindow(30*time.Minute, 15*time.Minute).
		GroupBy(ds.Key).
		Mean(ds.Value).
		BudgetTuples(2000).
		Error(0.10, 0.95).
		Parallelism(4).
		Run(func(worker int, r spear.Result) {
			mu.Lock()
			groupCounts[winKey{worker, int64(r.WindowID)}] = len(r.Groups)
			if r.Start >= lastStart {
				lastStart, lastEnd = r.Start, r.End
				lastWindow = r.Groups
			}
			mu.Unlock()
		})
	if err != nil {
		panic(err)
	}

	// Show the busiest routes of the last complete window.
	type routeFare struct {
		route string
		fare  float64
	}
	var rows []routeFare
	for route, fare := range lastWindow {
		rows = append(rows, routeFare{route, fare})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].fare > rows[j].fare })
	if len(rows) > 8 {
		rows = rows[:8]
	}
	fmt.Printf("window [%s, %s): %d distinct routes at this worker; highest average fares:\n",
		time.Unix(0, lastStart).Format("15:04"), time.Unix(0, lastEnd).Format("15:04"),
		len(lastWindow))
	for _, rf := range rows {
		fmt.Printf("  route %-14s $%.2f\n", rf.route, rf.fare)
	}

	var totalGroups, wins int
	for _, g := range groupCounts {
		totalGroups += g
		wins++
	}
	fmt.Printf("\n%d worker-windows, %.0f routes per worker-window on average\n",
		wins, float64(totalGroups)/float64(wins))
	fmt.Printf("accelerated %d/%d windows (%.0f%%), mean window proc %v\n",
		summary.Accelerated, summary.Windows,
		100*float64(summary.Accelerated)/float64(summary.Windows),
		summary.MeanProcTime)
}
