// Quickstart: the smallest complete SPEAr program.
//
// It builds a stream of synthetic sensor readings, asks for the
// per-window 95th percentile with a 10% error bound at 95% confidence,
// and prints each window result together with how it was produced
// (sampled vs exact) and the engine's acceleration statistics.
//
// Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"
	"time"

	"spear"
)

func main() {
	// 1. Generate a synthetic input stream: one reading per
	// millisecond for two minutes, values drifting over time.
	rng := rand.New(rand.NewSource(42))
	var tuples []spear.Tuple
	start := time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC).UnixNano()
	for i := 0; i < 120_000; i++ {
		ts := start + int64(i)*int64(time.Millisecond)
		base := 100 + 20*float64(i)/120_000 // slow upward drift
		v := base + rng.NormFloat64()*15
		tuples = append(tuples, spear.NewTuple(ts, spear.Float(v)))
	}

	// 2. Define the continuous query: p95 over 10s sliding windows
	// advancing every 5s, answered from at most 2,000 buffered values
	// per window, within 10% at 95% confidence.
	q := spear.NewQuery("sensor-p95").
		Source(spear.FromSlice(tuples)).
		SlidingWindow(10*time.Second, 5*time.Second).
		Percentile(func(t spear.Tuple) float64 { return t.Vals[0].AsFloat() }, 0.95).
		BudgetTuples(2000).
		Error(0.10, 0.95)

	// 3. Run it. The sink receives every window result in order.
	summary, err := q.Run(func(worker int, r spear.Result) {
		fmt.Printf("window [%s, %s)  p95=%7.2f  mode=%-11s  sample=%d/%d tuples\n",
			time.Unix(0, r.Start).Format("15:04:05"),
			time.Unix(0, r.End).Format("15:04:05"),
			r.Scalar, r.Mode, r.SampleN, r.N)
	})
	if err != nil {
		panic(err)
	}

	// 4. Inspect the run: how many windows were accelerated, and what
	// the window processing times looked like.
	fmt.Printf("\n%d windows, %d accelerated (%.0f%%), mean proc %v, p95 proc %v\n",
		summary.Windows, summary.Accelerated,
		100*float64(summary.Accelerated)/float64(summary.Windows),
		summary.MeanProcTime, summary.P95ProcTime)
}
