// Clustermon reproduces the paper's GCM scenario: the mean CPU time per
// scheduling class over 60-minute sliding windows advancing every 30
// minutes, on a Google-cluster-style task-event stream.
//
// The scheduling classes are known at submission time (there are four),
// which puts SPEAr in its cheapest mode: the budget is split equally and
// per-class reservoir samples are built at tuple arrival, so an
// accelerated window costs O(b) with no scan at all (§4.1). The example
// also demonstrates the custom accuracy-estimator hook by logging every
// window the built-in estimator refuses to accelerate.
//
// Run it with:
//
//	go run ./examples/clustermon [-tuples N]
package main

import (
	"flag"
	"fmt"
	"sort"
	"sync"
	"time"

	"spear"
	"spear/internal/core"
	"spear/internal/dataset"
)

func main() {
	tuples := flag.Int("tuples", 2_000_000, "stream length (the paper's dataset has 24M)")
	flag.Parse()

	ds := dataset.GCM(dataset.GCMConfig{Tuples: *tuples, Seed: 3})

	var mu sync.Mutex
	refused := 0
	type winRes struct {
		start  int64
		mode   string
		groups map[string]float64
	}
	var results []winRes

	summary, err := spear.NewQuery("cpu-by-class").
		Source(spear.FromFunc(ds.Next)).
		SlidingWindow(time.Hour, 30*time.Minute).
		GroupBy(ds.Key).
		KnownGroups(dataset.SchedClasses).
		Mean(ds.Value).
		BudgetTuples(4000).
		Error(0.10, 0.95).
		// Wrap the built-in estimator to observe its decisions — the
		// same hook a user-defined approximate operation would use.
		EstimateGroupedWith(func(g core.GroupedState) (float64, bool) {
			est, ok := core.DefaultGroupedEstimate(g)
			if !ok || est > g.Epsilon {
				mu.Lock()
				refused++
				mu.Unlock()
			}
			return est, ok
		}).
		Run(func(worker int, r spear.Result) {
			mu.Lock()
			results = append(results, winRes{r.Start, r.Mode.String(), r.Groups})
			mu.Unlock()
		})
	if err != nil {
		panic(err)
	}

	sort.Slice(results, func(i, j int) bool { return results[i].start < results[j].start })
	fmt.Println("per-class mean CPU time (first 6 windows):")
	for i, r := range results {
		if i >= 6 {
			break
		}
		fmt.Printf("  %s  [%s]  sc0=%6.2f sc1=%6.2f sc2=%6.2f sc3=%6.2f\n",
			time.Unix(0, r.start).Format("15:04"), r.mode,
			r.groups["sc0"], r.groups["sc1"], r.groups["sc2"], r.groups["sc3"])
	}

	fmt.Printf("\n%d windows; %d accelerated (%.0f%%); estimator refused %d (straggler bursts)\n",
		summary.Windows, summary.Accelerated,
		100*float64(summary.Accelerated)/float64(summary.Windows), refused)
	fmt.Printf("mean window proc %v, p95 %v, mean worker memory %.0fKB\n",
		summary.MeanProcTime, summary.P95ProcTime, summary.MeanMemBytes/1024)
}
