// Customop demonstrates the paper's API for user-defined approximate
// stateful operations (§4): the user supplies the aggregate itself and
// an accuracy-estimation function, and SPEAr runs it through the same
// accelerate-or-fallback workflow as the built-in operations.
//
// The operation here is a 5%-trimmed mean of order latencies — a robust
// location estimate that ignores timeout spikes — with a conservative
// CI-based estimator. Budgets adapt online (the AdaptiveBudget
// extension), so the program never needs the offline budget analysis
// the paper performed by hand.
//
// Run it with:
//
//	go run ./examples/customop
package main

import (
	"fmt"
	"math/rand"
	"time"

	"spear"
	"spear/internal/agg"
	"spear/internal/core"
)

func main() {
	// Synthetic latency stream: lognormal body plus rare timeout
	// spikes two orders of magnitude out.
	rng := rand.New(rand.NewSource(2026))
	var in []spear.Tuple
	base := time.Date(2026, 7, 4, 9, 0, 0, 0, time.UTC).UnixNano()
	for i := 0; i < 600_000; i++ {
		ts := base + int64(i)*int64(200*time.Microsecond)
		lat := 12 * (1 + 0.3*rng.NormFloat64())
		if lat < 1 {
			lat = 1
		}
		if rng.Float64() < 0.002 {
			lat = 5000 // timeout
		}
		in = append(in, spear.NewTuple(ts, spear.Float(lat)))
	}

	// The accuracy-estimation function mirrors the aggregate: it trims
	// the sample the same way the trimmed mean does and builds a
	// confidence interval over the surviving values, so timeout spikes
	// do not scare the estimator away from accelerating. A custom
	// operation without a sound estimator should return ok=false to
	// force exact processing.
	estimator := core.TrimmedMeanEstimator(0.05)

	summary, err := spear.NewQuery("latency-trimmed-mean").
		Source(spear.FromSlice(in)).
		SlidingWindow(10*time.Second, 5*time.Second).
		CustomAgg(agg.TrimmedMean(0.05),
			func(t spear.Tuple) float64 { return t.Vals[0].AsFloat() },
					estimator).
		BudgetTuples(64). // deliberately too small: watch it adapt
		AdaptiveBudget(64, 8192).
		Error(0.05, 0.95).
		Run(func(worker int, r spear.Result) {
			fmt.Printf("[%s, %s)  trimmed-mean=%6.2fms  %-8s  sample=%5d/%d\n",
				time.Unix(0, r.Start).Format("15:04:05"),
				time.Unix(0, r.End).Format("15:04:05"),
				r.Scalar, r.Mode, r.SampleN, r.N)
		})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\n%d windows, %d accelerated; mean proc %v\n",
		summary.Windows, summary.Accelerated, summary.MeanProcTime)
}
