// Netmon reproduces the paper's DEC network-monitoring scenario (§5):
// the median TCP packet size over 45-second sliding windows advancing
// every 15 seconds — a holistic operation a conventional engine must
// buffer and sort every window for.
//
// The example runs the same CQ twice, once on the exact engine and once
// on SPEAr with a 200-tuple budget, and compares processing time,
// memory, and the realized accuracy of every accelerated window.
//
// Run it with:
//
//	go run ./examples/netmon [-tuples N]
package main

import (
	"flag"
	"fmt"
	"time"

	"spear"
	"spear/internal/dataset"
	"spear/internal/window"
)

func main() {
	tuples := flag.Int("tuples", 400_000, "stream length (the paper's trace has 4M)")
	flag.Parse()

	run := func(backend spear.Backend) (spear.Summary, map[window.ID]float64) {
		ds := dataset.DEC(dataset.DECConfig{Tuples: *tuples, Seed: 7})
		medians := make(map[window.ID]float64)
		sum, err := spear.NewQuery("dec-median").
			Source(spear.FromFunc(ds.Next)).
			SlidingWindow(45*time.Second, 15*time.Second).
			Median(ds.Value).
			BudgetTuples(200). // 0.4% of the ~47K-tuple average window
			Error(0.10, 0.95).
			WithBackend(backend).
			Run(func(worker int, r spear.Result) {
				medians[r.WindowID] = r.Scalar
			})
		if err != nil {
			panic(err)
		}
		return sum, medians
	}

	fmt.Println("running exact engine (Storm-style single buffer)...")
	exactSum, exact := run(spear.BackendExact)
	fmt.Println("running SPEAr (budget 200 tuples, ε=10%, α=95%)...")
	spearSum, approx := run(spear.BackendSPEAr)

	// Compare per-window medians.
	var worst, total float64
	n := 0
	for id, ev := range exact {
		av, ok := approx[id]
		if !ok || ev == 0 {
			continue
		}
		rel := (av - ev) / ev
		if rel < 0 {
			rel = -rel
		}
		total += rel
		if rel > worst {
			worst = rel
		}
		n++
	}

	fmt.Printf("\n%-22s %14s %14s\n", "", "exact", "SPEAr")
	fmt.Printf("%-22s %14v %14v\n", "mean window proc", exactSum.MeanProcTime, spearSum.MeanProcTime)
	fmt.Printf("%-22s %14v %14v\n", "p95 window proc", exactSum.P95ProcTime, spearSum.P95ProcTime)
	fmt.Printf("%-22s %13.1fK %13.1fK\n", "mean worker mem (B)",
		exactSum.MeanMemBytes/1024, spearSum.MeanMemBytes/1024)
	fmt.Printf("%-22s %14d %14d\n", "windows", exactSum.Windows, spearSum.Windows)
	fmt.Printf("%-22s %14s %13.0f%%\n", "accelerated", "-",
		100*float64(spearSum.Accelerated)/float64(spearSum.Windows))
	fmt.Printf("\nper-window median error vs exact over %d windows: mean %.2f%%, worst %.2f%%\n",
		n, 100*total/float64(n), 100*worst)
	fmt.Printf("speedup: %.1fx mean, %.1fx p95\n",
		float64(exactSum.MeanProcTime)/float64(spearSum.MeanProcTime),
		float64(exactSum.P95ProcTime)/float64(spearSum.P95ProcTime))
}
