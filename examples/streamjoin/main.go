// Streamjoin demonstrates the windowed stream equi-join substrate —
// the stateful operation the paper routes through its custom-operation
// API (§4) — joining an ad-impressions stream with a clicks stream on
// ad id within a 30-second window, exactly and with universe sampling.
//
// Universe sampling keeps a key on *both* inputs or on neither, so the
// surviving keys join completely and observed/p estimates the exact
// join size without the pair-loss bias of independent per-tuple
// sampling.
//
// Run it with:
//
//	go run ./examples/streamjoin
package main

import (
	"fmt"
	"math/rand"
	"time"

	"spear"
	"spear/internal/join"
)

func main() {
	const (
		ads    = 2000
		events = 300_000
	)
	rng := rand.New(rand.NewSource(8))

	// One interleaved event stream: ~90% impressions, ~10% clicks,
	// clicks biased to recent popular ads.
	type ev struct {
		t     spear.Tuple
		click bool
	}
	var stream []ev
	ts := int64(0)
	for i := 0; i < events; i++ {
		ts += int64(rng.ExpFloat64() * float64(2*time.Millisecond))
		ad := fmt.Sprintf("ad-%d", int(float64(ads)*rng.Float64()*rng.Float64()))
		stream = append(stream, ev{
			t:     spear.NewTuple(ts, spear.Str(ad), spear.Float(1)),
			click: rng.Float64() < 0.10,
		})
	}

	run := func(rate float64, seed int64) (*join.Joiner, time.Duration) {
		var pairs int
		j, err := join.New(join.Config{
			Window:     int64(30 * time.Second),
			LeftKey:    func(t spear.Tuple) string { return t.Vals[0].AsString() },
			RightKey:   func(t spear.Tuple) string { return t.Vals[0].AsString() },
			SampleRate: rate,
			Seed:       seed,
			Emit:       func(join.Pair) { pairs++ },
		})
		if err != nil {
			panic(err)
		}
		start := time.Now()
		for i, e := range stream {
			if e.click {
				j.OnTuple(join.Right, e.t)
			} else {
				j.OnTuple(join.Left, e.t)
			}
			if i%4096 == 4095 {
				j.OnWatermark(e.t.Ts)
			}
		}
		return j, time.Since(start)
	}

	exact, exactDur := run(1.0, 0)
	fmt.Printf("exact join:   %10d impression-click pairs in %8v (state %d tuples)\n",
		exact.Emitted(), exactDur.Round(time.Millisecond), exact.StateSize())

	for _, rate := range []float64{0.25, 0.10} {
		s, dur := run(rate, 42)
		est := s.EstimateJoinSize()
		rel := (est - float64(exact.Emitted())) / float64(exact.Emitted())
		fmt.Printf("sampled p=%.2f: %9.0f estimated pairs in %8v (err %+.2f%%, %d tuples sampled out)\n",
			rate, est, dur.Round(time.Millisecond), 100*rel, s.SampledOut())
	}
}
