package spear

import (
	"math"
	"net"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"spear/internal/leakcheck"
	"spear/internal/transport"
)

// distTuples builds a deterministic stream over `windows` tumbling
// windows of winSec seconds each: dense windows carry enough tuples
// for the accuracy check to accept a sample, while every third window
// is so sparse the check refuses and the exact path runs — so a run
// over this stream exercises both production modes. Each tuple carries
// a skewed float value and a group key cycling over g groups (unused
// by scalar queries).
func distTuples(windows, winSec, g int) []Tuple {
	var ts []Tuple
	i := 0
	for w := 0; w < windows; w++ {
		n := 600
		if w%3 == 1 {
			n = 5
		}
		for k := 0; k < n; k++ {
			sec := int64(w*winSec) + int64(k*winSec)/int64(n)
			v := float64((i*7919)%1000) / 3
			ts = append(ts, NewTuple(sec*int64(time.Second), Float(v), Int(int64(i%g))))
			i++
		}
	}
	return ts
}

// workerResult pairs a result with the (global) worker that produced
// it, for bit-identity comparison across runtimes.
type workerResult struct {
	Worker int
	Res    Result
}

type workerSink struct {
	mu  sync.Mutex
	res []workerResult
}

func (s *workerSink) add(worker int, r Result) {
	s.mu.Lock()
	s.res = append(s.res, workerResult{Worker: worker, Res: r})
	s.mu.Unlock()
}

func (s *workerSink) sorted() []workerResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := append([]workerResult(nil), s.res...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Res.Start != out[j].Res.Start {
			return out[i].Res.Start < out[j].Res.Start
		}
		return out[i].Worker < out[j].Worker
	})
	return out
}

// shardCluster runs n ServeShard goroutines on loopback listeners.
type shardCluster struct {
	addrs []string
	lis   []net.Listener
	done  []chan error
}

func startShards(t *testing.T, n int, build func() *Query) *shardCluster {
	t.Helper()
	c := &shardCluster{}
	for i := 0; i < n; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		q := build()
		go func() { done <- q.ServeShard(lis) }()
		c.addrs = append(c.addrs, lis.Addr().String())
		c.lis = append(c.lis, lis)
		c.done = append(c.done, done)
	}
	return c
}

// wait collects every shard's exit, failing the test on errors unless
// tolerate is set.
func (c *shardCluster) wait(t *testing.T, tolerate bool) {
	t.Helper()
	for i, done := range c.done {
		select {
		case err := <-done:
			if err != nil && !tolerate {
				t.Errorf("shard %d: %v", i, err)
			}
		case <-time.After(20 * time.Second):
			_ = c.lis[i].Close()
			t.Fatalf("shard %d did not exit", i)
		}
	}
}

func (c *shardCluster) kill() {
	for _, l := range c.lis {
		_ = l.Close()
	}
}

// requireIdentical asserts two runs produced bit-identical streams:
// same windows, same workers, same values, same production modes.
func requireIdentical(t *testing.T, ref, got []workerResult) {
	t.Helper()
	if len(ref) != len(got) {
		t.Fatalf("result count: got %d, want %d", len(got), len(ref))
	}
	for i := range ref {
		if ref[i].Worker != got[i].Worker || !reflect.DeepEqual(ref[i].Res, got[i].Res) {
			t.Fatalf("result %d diverged:\n got %d %+v\nwant %d %+v",
				i, got[i].Worker, got[i].Res, ref[i].Worker, ref[i].Res)
		}
	}
}

func modes(rs []workerResult) map[string]int {
	m := map[string]int{}
	for _, r := range rs {
		m[r.Res.Mode.String()]++
	}
	return m
}

// TestDistributedLoopbackIdentity runs the same scalar holistic query
// single-process and across two TCP shard nodes and requires
// bit-identical output — values AND accelerate/exact decisions. The
// never-firing checkpoint cadence matches the reference's partitioner
// seeding to the distributed run's without emitting barriers.
func TestDistributedLoopbackIdentity(t *testing.T) {
	leakcheck.Check(t, leakcheck.Timeout(10*time.Second))
	in := distTuples(20, 300, 8)
	build := func() *Query {
		return NewQuery("distq").
			TumblingWindow(300 * time.Second).
			Percentile(func(tp Tuple) float64 { return tp.Vals[0].AsFloat() }, 0.9).
			BudgetTuples(96).
			Error(0.10, 0.95).
			Seed(11).
			Parallelism(4).
			CheckpointEvery(1<<40, 0)
	}

	ref := &workerSink{}
	if _, err := build().Source(FromSlice(in)).Run(ref.add); err != nil {
		t.Fatal(err)
	}
	want := ref.sorted()
	if m := modes(want); m["sampled"] == 0 || m["exact"] == 0 {
		t.Fatalf("reference does not exercise both modes: %v", m)
	}

	shards := startShards(t, 2, build)
	got := &workerSink{}
	if _, err := build().Source(FromSlice(in)).Distribute(shards.addrs...).Run(got.add); err != nil {
		t.Fatal(err)
	}
	shards.wait(t, false)
	requireIdentical(t, want, got.sorted())
}

// TestDistributedLoopbackIdentityGrouped does the same for a grouped
// aggregate, where seeded-fields routing decides which worker owns
// each group — the distributed run must route identically or
// per-worker samples diverge.
func TestDistributedLoopbackIdentityGrouped(t *testing.T) {
	leakcheck.Check(t, leakcheck.Timeout(10*time.Second))
	in := distTuples(15, 400, 12)
	build := func() *Query {
		return NewQuery("distg").
			TumblingWindow(400 * time.Second).
			GroupBy(func(tp Tuple) string { return tp.Vals[1].String() }).
			Mean(func(tp Tuple) float64 { return tp.Vals[0].AsFloat() }).
			BudgetTuples(128).
			Error(0.10, 0.95).
			Seed(23).
			Parallelism(3).
			CheckpointEvery(1<<40, 0)
	}

	ref := &workerSink{}
	if _, err := build().Source(FromSlice(in)).Run(ref.add); err != nil {
		t.Fatal(err)
	}
	want := ref.sorted()
	if len(want) == 0 {
		t.Fatal("reference produced nothing")
	}

	shards := startShards(t, 3, build)
	got := &workerSink{}
	if _, err := build().Source(FromSlice(in)).Distribute(shards.addrs...).Run(got.add); err != nil {
		t.Fatal(err)
	}
	shards.wait(t, false)
	requireIdentical(t, want, got.sorted())
}

// TestDistributedBarriersOverWire runs a checkpointing distributed
// query whose cadence fires mid-stream, with a stateless stage fanning
// the windowed input out over four senders: barriers and watermarks
// must align across the wire exactly as in-process. Four senders mean
// the windowed workers see a nondeterministic cross-sender interleaving
// in BOTH runtimes, so the extractor rounds each value to an integer:
// integral float64 sums are exact and therefore order-independent,
// which keeps the comparison bit-for-bit without pinning an arrival
// order no runtime guarantees.
func TestDistributedBarriersOverWire(t *testing.T) {
	leakcheck.Check(t, leakcheck.Timeout(10*time.Second))
	in := distTuples(20, 250, 6)
	build := func() *Query {
		return NewQuery("distb").
			Map(func(tp Tuple) (Tuple, bool) { return tp, true }).
			TumblingWindow(250 * time.Second).
			Sum(func(tp Tuple) float64 { return math.Round(tp.Vals[0].AsFloat() * 3) }).
			WithBackend(BackendExact).
			Seed(5).
			Parallelism(4).
			CheckpointEvery(900, 0)
	}

	ref := &workerSink{}
	var cmRef CheckpointMetrics
	if _, err := build().Source(FromSlice(in)).CheckpointMetricsInto(&cmRef).Run(ref.add); err != nil {
		t.Fatal(err)
	}
	want := ref.sorted()

	shards := startShards(t, 2, build)
	got := &workerSink{}
	var cm CheckpointMetrics
	if _, err := build().Source(FromSlice(in)).
		CheckpointMetricsInto(&cm).
		Distribute(shards.addrs...).
		Run(got.add); err != nil {
		t.Fatal(err)
	}
	shards.wait(t, false)
	requireIdentical(t, want, got.sorted())
	// Round counts are timing-dependent (the coordinator skips a cadence
	// point while a round is still in flight), so only completion is
	// asserted — the reference's count need not match.
	if cm.Completed.Load() < 1 {
		t.Fatal("distributed run committed no checkpoints")
	}
	if cmRef.Completed.Load() < 1 {
		t.Fatal("reference run committed no checkpoints")
	}
}

// TestDistributedReconnect cuts the connection mid-stream: the fabric
// must redial with backoff, replay the unacknowledged suffix, and the
// run must still be bit-identical — the wire-level exactly-once
// property.
func TestDistributedReconnect(t *testing.T) {
	leakcheck.Check(t, leakcheck.Timeout(10*time.Second))
	in := distTuples(20, 300, 8)
	build := func() *Query {
		return NewQuery("distr").
			TumblingWindow(300 * time.Second).
			Percentile(func(tp Tuple) float64 { return tp.Vals[0].AsFloat() }, 0.9).
			BudgetTuples(96).
			Error(0.10, 0.95).
			Seed(11).
			Parallelism(2).
			CheckpointEvery(700, 0)
	}

	ref := &workerSink{}
	if _, err := build().Source(FromSlice(in)).Run(ref.add); err != nil {
		t.Fatal(err)
	}

	shards := startShards(t, 1, build)
	fd := &transport.FaultDialer{CutAfterWrites: 40, CutOnce: true}
	ins := NewInstruments()
	got := &workerSink{}
	q := build().Source(FromSlice(in)).Distribute(shards.addrs...).ObserveWith(ins)
	q.transportDialer = fd
	q.transportBackoff = 5 * time.Millisecond
	if _, err := q.Run(got.add); err != nil {
		t.Fatal(err)
	}
	shards.wait(t, false)
	requireIdentical(t, ref.sorted(), got.sorted())
	if fd.Dials() < 2 {
		t.Fatalf("dialer saw %d dials; the cut did not force a reconnect", fd.Dials())
	}
	snap := ins.Snapshot(time.Now())
	var reconnects int64
	for _, tr := range snap.Transport {
		reconnects += tr.Reconnects
	}
	if reconnects < 1 {
		t.Fatalf("transport counters recorded %d reconnects, want >= 1", reconnects)
	}
}

// TestDistributedDialFaults exercises the remaining dial-time faults:
// refused first dials (capped backoff retries them) and duplicated
// connections that die before the handshake (the listener must shrug
// them off).
func TestDistributedDialFaults(t *testing.T) {
	leakcheck.Check(t, leakcheck.Timeout(10*time.Second))
	in := distTuples(10, 200, 4)
	build := func() *Query {
		return NewQuery("distf").
			TumblingWindow(200 * time.Second).
			Mean(func(tp Tuple) float64 { return tp.Vals[0].AsFloat() }).
			BudgetTuples(64).
			Seed(3).
			Parallelism(2).
			CheckpointEvery(1<<40, 0)
	}

	ref := &workerSink{}
	if _, err := build().Source(FromSlice(in)).Run(ref.add); err != nil {
		t.Fatal(err)
	}

	shards := startShards(t, 2, build)
	fd := &transport.FaultDialer{FailFirst: 2, DoubleDial: true, Delay: time.Millisecond}
	got := &workerSink{}
	q := build().Source(FromSlice(in)).Distribute(shards.addrs...)
	q.transportDialer = fd
	q.transportBackoff = 5 * time.Millisecond
	if _, err := q.Run(got.add); err != nil {
		t.Fatal(err)
	}
	shards.wait(t, false)
	requireIdentical(t, ref.sorted(), got.sorted())
}

// TestDistributedTopologyMismatch pairs a source with a shard built
// from a diverged query; the handshake must refuse and the run must
// fail loudly instead of computing silently different answers.
func TestDistributedTopologyMismatch(t *testing.T) {
	leakcheck.Check(t, leakcheck.Timeout(10*time.Second))
	in := distTuples(5, 100, 4)
	shardQ := func() *Query {
		return NewQuery("distm").
			TumblingWindow(100 * time.Second).
			Count().
			Seed(99). // diverged seed → different topology hash
			Parallelism(2)
	}
	shards := startShards(t, 1, shardQ)
	q := NewQuery("distm").
		TumblingWindow(100 * time.Second).
		Count().
		Seed(1).
		Parallelism(2).
		Source(FromSlice(in)).
		Distribute(shards.addrs...)
	q.transportBackoff = time.Millisecond
	q.transportRedials = 1
	_, err := q.Run(func(int, Result) {})
	if err == nil || !strings.Contains(err.Error(), "topology hash") {
		t.Fatalf("err = %v, want topology hash mismatch", err)
	}
	shards.kill()
	shards.wait(t, true)
}
