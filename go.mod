// Zero external dependencies by policy: everything — engine, codecs,
// observability, and both spearlint analysis layers — builds from the
// standard library alone.
//
// spearlint's dataflow layer (cmd/spearlint/internal/ssadf) would
// normally sit on golang.org/x/tools (go/packages for loading, go/ssa
// for the IR). The build environment has no module proxy access, so
// the repo carries a small stdlib-only substrate instead: a module
// loader over go/parser + go/types with the compiler's source importer
// for std imports, an AST-level CFG, and a CHA call graph. If proxy
// access becomes available, pin golang.org/x/tools here (any recent
// v0.2x release) and port the ssadf analyzers onto go/ssa — the
// analyzer logic is deliberately separated from the substrate so only
// load.go/cfg.go/callgraph.go need to change.
module spear

go 1.22
